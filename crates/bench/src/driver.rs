//! The device-generic throughput driver — the one measurement core
//! behind both `store_throughput` (a local [`StripeStore`]) and
//! `net_throughput` (TCP clients against an in-process server).
//!
//! Both harnesses used to carry their own timing loops; because every
//! backend now implements `stair_device::BlockDevice`, the workload
//! body, the per-thread region carving, the warmup policy, and the
//! timing arithmetic live here once. A measurement drives one device
//! handle per thread over disjoint regions — for an in-process store
//! that is the same `&StripeStore` on every thread (it is `Sync`), for
//! the wire it is one connection per thread — so the only contention is
//! whatever the backend really has (stripe locks, sockets, worker
//! pools).
//!
//! [`StripeStore`]: https://docs.rs/stair-store

use std::time::Instant;

use stair_device::{BlockDevice, IoBatch};
use stair_obs::trace::{self, names};
use stair_obs::{Histogram, HistogramSnapshot};

use crate::zipf::{Dist, Sampler};

/// A workload shape. Sequential ops stream `seq_io`-byte transfers;
/// random ops issue single `rand_io`-byte transfers at uniformly
/// pseudo-random aligned offsets (the small-I/O shape that exercises
/// the parity-delta path).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DevOp {
    /// Sequential writes of `seq_io` bytes.
    SeqWrite,
    /// Sequential reads of `seq_io` bytes.
    SeqRead,
    /// Random writes of `rand_io` bytes.
    RandWrite,
    /// Random reads of `rand_io` bytes.
    RandRead,
}

impl DevOp {
    /// The stable name used in reports (`seq_write`, `rand_read`, …).
    pub fn name(self) -> &'static str {
        match self {
            DevOp::SeqWrite => "seq_write",
            DevOp::SeqRead => "seq_read",
            DevOp::RandWrite => "rand_write",
            DevOp::RandRead => "rand_read",
        }
    }
}

/// Transfer sizes for [`measure_devices`].
#[derive(Clone, Copy, Debug)]
pub struct IoShape {
    /// Bytes per sequential transfer.
    pub seq_io: usize,
    /// Bytes per random transfer (usually one block).
    pub rand_io: usize,
}

/// One timed measurement: aggregated bytes/requests over wall-clock
/// seconds, plus submission-latency quantiles. One latency sample is
/// taken per *submission* — a single `read_at`/`write_at` call on the
/// per-op paths, one whole `submit` call on the batched path — so the
/// quantiles answer "how long did the caller wait per call". Samples
/// go through the same log₂ [`Histogram`] the device/net stack records
/// into, so a bench quantile and a `stair dev metrics` quantile mean
/// the same thing (nearest-rank bucket upper bound, clamped to the
/// observed max; within one bucket's relative error of exact).
#[derive(Clone, Debug)]
pub struct DevMeasurement {
    /// Payload bytes transferred in the timed pass.
    pub bytes: usize,
    /// Requests (logical ops) issued in the timed pass.
    pub requests: usize,
    /// Wall-clock duration of the timed pass.
    pub seconds: f64,
    /// Median submission latency in microseconds.
    pub lat_p50_us: f64,
    /// 99th-percentile submission latency in microseconds.
    pub lat_p99_us: f64,
    /// Worst submission latency in microseconds.
    pub lat_max_us: f64,
    /// The full submission-latency distribution (microsecond samples).
    pub latency: HistogramSnapshot,
}

impl DevMeasurement {
    /// Throughput in MiB/s.
    pub fn mb_per_s(&self) -> f64 {
        self.bytes as f64 / self.seconds / (1024.0 * 1024.0)
    }

    /// Request rate per second.
    pub fn req_per_s(&self) -> f64 {
        self.requests as f64 / self.seconds
    }

    fn from_totals(bytes: usize, requests: usize, seconds: f64, lat_us: &Histogram) -> Self {
        let latency = lat_us.snapshot();
        DevMeasurement {
            bytes,
            requests,
            seconds,
            lat_p50_us: latency.p50() as f64,
            lat_p99_us: latency.p99() as f64,
            lat_max_us: latency.max as f64,
            latency,
        }
    }
}

/// Runs `op` over `devs` — one device handle per thread, each confined
/// to a disjoint region of `[0, capacity)` — with one warmup pass (pays
/// connection setup and first-touch costs) followed by `passes` timed
/// passes.
///
/// # Panics
///
/// Panics if `devs` is empty, `capacity` is too small to give every
/// thread at least one sequential transfer, or a device call fails
/// (benchmarks want loud failures, not skewed numbers).
pub fn measure_devices(
    devs: &[&dyn BlockDevice],
    op: DevOp,
    capacity: usize,
    shape: IoShape,
    passes: usize,
) -> DevMeasurement {
    assert!(!devs.is_empty(), "need at least one device handle");
    let region = capacity / devs.len() / shape.seq_io * shape.seq_io;
    assert!(
        region >= shape.seq_io,
        "capacity {capacity} too small for {} thread(s) of {}-byte transfers",
        devs.len(),
        shape.seq_io
    );
    let pass = |lat_us: &Histogram| -> (usize, usize) {
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (c, dev) in devs.iter().enumerate() {
                let lat = lat_us.clone();
                handles.push(scope.spawn(move || run_workload(*dev, op, c, region, shape, &lat)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("bench thread"))
                .fold((0, 0), |(b, r), (tb, tr)| (b + tb, r + tr))
        })
    };
    pass(&Histogram::new()); // warmup (samples discarded)
    let lat_us = Histogram::new();
    let start = Instant::now();
    let mut bytes = 0;
    let mut requests = 0;
    for _ in 0..passes.max(1) {
        let (b, r) = pass(&lat_us);
        bytes += b;
        requests += r;
    }
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    DevMeasurement::from_totals(bytes, requests, seconds, &lat_us)
}

/// Runs a batched small-I/O workload over `devs`: each thread walks its
/// region in consecutive `block`-sized single-block ops, submitting
/// them `batch` at a time through [`BlockDevice::submit`]. `batch == 1`
/// issues plain `read_at`/`write_at` calls instead — the single-op
/// baseline the batched axis is compared against.
///
/// # Panics
///
/// Panics if `devs` is empty, the per-thread region cannot hold one
/// block, or a device call fails.
pub fn measure_batched(
    devs: &[&dyn BlockDevice],
    write: bool,
    capacity: usize,
    block: usize,
    batch: usize,
    passes: usize,
) -> DevMeasurement {
    measure_batched_with(devs, write, capacity, block, batch, passes, Dist::Seq, 0)
}

/// [`measure_batched`] with an explicit offset distribution: `Seq`
/// walks each region in consecutive blocks (the coalescing-friendly
/// baseline), `Uniform`/`Zipf` draw the same number of single-block
/// ops from a seeded [`Sampler`] instead — the skew axis. Identical
/// `(dist, seed)` replay identical offset sequences, so two backends
/// can be measured over the very same workload.
#[allow(clippy::too_many_arguments)]
pub fn measure_batched_with(
    devs: &[&dyn BlockDevice],
    write: bool,
    capacity: usize,
    block: usize,
    batch: usize,
    passes: usize,
    dist: Dist,
    seed: u64,
) -> DevMeasurement {
    assert!(!devs.is_empty(), "need at least one device handle");
    let region = capacity / devs.len() / block * block;
    assert!(
        region >= block,
        "capacity {capacity} too small for {} thread(s) of {block}-byte blocks",
        devs.len()
    );
    let pass = |lat_us: &Histogram| -> (usize, usize) {
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (c, dev) in devs.iter().enumerate() {
                let lat = lat_us.clone();
                handles.push(scope.spawn(move || {
                    run_batched(*dev, write, c, region, block, batch, dist, seed, &lat)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("bench thread"))
                .fold((0, 0), |(b, r), (tb, tr)| (b + tb, r + tr))
        })
    };
    pass(&Histogram::new()); // warmup (samples discarded)
    let lat_us = Histogram::new();
    let start = Instant::now();
    let mut bytes = 0;
    let mut requests = 0;
    for _ in 0..passes.max(1) {
        let (b, r) = pass(&lat_us);
        bytes += b;
        requests += r;
    }
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    DevMeasurement::from_totals(bytes, requests, seconds, &lat_us)
}

/// The per-thread batched workload body.
#[allow(clippy::too_many_arguments)]
fn run_batched(
    dev: &dyn BlockDevice,
    write: bool,
    c: usize,
    region: usize,
    block: usize,
    batch: usize,
    dist: Dist,
    seed: u64,
    lat_us: &Histogram,
) -> (usize, usize) {
    let base = (c * region) as u64;
    let slots = region / block;
    // A `Seq` sampler walks `0, 1, 2, …` — exactly the consecutive
    // layout the original loop issued; skewed dists draw the same op
    // count from their seeded sequence instead.
    let mut sampler = Sampler::new(dist, slots, seed.wrapping_add(c as u64));
    let payload = pattern(block, c as u64 + 11);
    let mut bytes = 0usize;
    let mut requests = 0usize;
    let mut issued = 0usize;
    while issued < slots {
        let group = batch.max(1).min(slots - issued);
        let t0 = Instant::now();
        // One trace root per measured submission (no-op unless tracing
        // is enabled), so its duration is the same interval the latency
        // histogram samples — percentiles and traces cross-check.
        let mut tag = trace::root_span(names::BENCH_SUBMIT);
        tag.set_bytes((group * block) as u64);
        if batch <= 1 {
            let at = base + (sampler.next_slot() * block) as u64;
            if write {
                dev.write_at(at, &payload).expect("bench write");
            } else {
                let got = dev.read_at(at, block).expect("bench read");
                assert_eq!(got.len(), block);
            }
        } else {
            let mut ops = IoBatch::new();
            for _ in 0..group {
                let at = base + (sampler.next_slot() * block) as u64;
                if write {
                    ops.write(at, payload.clone());
                } else {
                    ops.read(at, block);
                }
            }
            let result = dev.submit(&ops).expect("bench submit");
            assert_eq!(result.results.len(), group);
        }
        tag.finish();
        lat_us.record(t0.elapsed().as_micros() as u64);
        bytes += group * block;
        requests += group;
        issued += group;
    }
    (bytes, requests)
}

/// Times single-block reads drawn from a seeded [`Sampler`] against
/// one device handle — the cache-tier hit-rate measurement. The warmup
/// pass replays the *same* sequence as the timed passes (the sampler
/// is rebuilt per pass from the same seed), so a cache tier in front
/// of the device is warm exactly as a steady-state hot set would have
/// left it.
pub fn measure_sampled_reads(
    dev: &dyn BlockDevice,
    capacity: usize,
    block: usize,
    dist: Dist,
    seed: u64,
    ops: usize,
    passes: usize,
) -> DevMeasurement {
    let slots = capacity / block;
    assert!(
        slots > 0,
        "capacity {capacity} below one {block}-byte block"
    );
    let pass = |lat_us: &Histogram| -> (usize, usize) {
        let mut sampler = Sampler::new(dist, slots, seed);
        for _ in 0..ops {
            let at = (sampler.next_slot() * block) as u64;
            let t0 = Instant::now();
            let mut tag = trace::root_span(names::BENCH_SUBMIT);
            tag.set_bytes(block as u64);
            let got = dev.read_at(at, block).expect("sampled read");
            tag.finish();
            lat_us.record(t0.elapsed().as_micros() as u64);
            assert_eq!(got.len(), block);
        }
        (ops * block, ops)
    };
    pass(&Histogram::new()); // warmup (fills any cache tier)
    let lat_us = Histogram::new();
    let start = Instant::now();
    let mut bytes = 0;
    let mut requests = 0;
    for _ in 0..passes.max(1) {
        let (b, r) = pass(&lat_us);
        bytes += b;
        requests += r;
    }
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    DevMeasurement::from_totals(bytes, requests, seconds, &lat_us)
}

/// The per-thread workload body shared by warmup and timed passes.
fn run_workload(
    dev: &dyn BlockDevice,
    op: DevOp,
    c: usize,
    region: usize,
    shape: IoShape,
    lat_us: &Histogram,
) -> (usize, usize) {
    let base = (c * region) as u64;
    let mut bytes = 0usize;
    let mut requests = 0usize;
    match op {
        DevOp::SeqWrite => {
            let payload = pattern(shape.seq_io, c as u64);
            let mut at = 0;
            while at + shape.seq_io <= region {
                let t0 = Instant::now();
                let mut tag = trace::root_span(names::BENCH_SUBMIT);
                tag.set_bytes(shape.seq_io as u64);
                dev.write_at(base + at as u64, &payload).expect("write");
                tag.finish();
                lat_us.record(t0.elapsed().as_micros() as u64);
                bytes += shape.seq_io;
                requests += 1;
                at += shape.seq_io;
            }
        }
        DevOp::SeqRead => {
            let mut at = 0;
            while at + shape.seq_io <= region {
                let t0 = Instant::now();
                let mut tag = trace::root_span(names::BENCH_SUBMIT);
                tag.set_bytes(shape.seq_io as u64);
                let got = dev.read_at(base + at as u64, shape.seq_io).expect("read");
                tag.finish();
                lat_us.record(t0.elapsed().as_micros() as u64);
                assert_eq!(got.len(), shape.seq_io);
                bytes += shape.seq_io;
                requests += 1;
                at += shape.seq_io;
            }
        }
        DevOp::RandWrite | DevOp::RandRead => {
            let block = shape.rand_io;
            let slots = (region / block).max(1);
            let ops = (region / shape.seq_io).max(1) * (shape.seq_io / block).min(16);
            let payload = pattern(block, c as u64 + 7);
            let mut state = 0x9E3779B97F4A7C15u64.wrapping_add(c as u64);
            for _ in 0..ops {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let at = base + (((state >> 16) as usize % slots) * block) as u64;
                let t0 = Instant::now();
                let mut tag = trace::root_span(names::BENCH_SUBMIT);
                tag.set_bytes(block as u64);
                if op == DevOp::RandWrite {
                    dev.write_at(at, &payload).expect("rand write");
                } else {
                    let got = dev.read_at(at, block).expect("rand read");
                    assert_eq!(got.len(), block);
                }
                tag.finish();
                lat_us.record(t0.elapsed().as_micros() as u64);
                bytes += block;
                requests += 1;
            }
        }
    }
    (bytes, requests)
}

/// A deterministic per-thread byte pattern.
fn pattern(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(31).wrapping_add(seed * 131) % 251) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stair_store::{StoreOptions, StripeStore};

    #[test]
    fn measures_a_real_store_through_the_trait() {
        let dir = std::env::temp_dir().join(format!("stair-driver-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = StripeStore::create(
            &dir,
            &StoreOptions {
                code: "stair:8,4,2,1-1-2".parse().unwrap(),
                symbol: 64,
                stripes: 8,
            },
        )
        .expect("create store");
        let capacity = store.capacity() as usize;
        let dev: &dyn BlockDevice = &store;
        let shape = IoShape {
            seq_io: capacity / 2,
            rand_io: 64,
        };
        // Two handles to the same store = two concurrent threads.
        for op in [
            DevOp::SeqWrite,
            DevOp::SeqRead,
            DevOp::RandWrite,
            DevOp::RandRead,
        ] {
            let m = measure_devices(&[dev, dev], op, capacity, shape, 1);
            assert!(m.bytes > 0, "{op:?} moved no bytes");
            assert!(m.requests > 0);
            assert!(m.mb_per_s() > 0.0);
            assert!(m.req_per_s() > 0.0);
            assert!(
                m.latency.count() == m.requests as u64,
                "{op:?} has {} latency samples for {} requests",
                m.latency.count(),
                m.requests
            );
            assert!(m.lat_p50_us <= m.lat_p99_us && m.lat_p99_us <= m.lat_max_us);
        }

        // The batched axis covers the same region, at every batch size,
        // for both the per-op baseline (batch 1) and true batches.
        for batch in [1usize, 4, 64] {
            for write in [true, false] {
                let m = measure_batched(&[dev, dev], write, capacity, 64, batch, 1);
                assert_eq!(m.bytes, capacity / 2 * 2, "batch={batch} write={write}");
                assert!(m.req_per_s() > 0.0);
                assert!(m.lat_max_us >= m.lat_p50_us);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quantiles_come_from_the_shared_histogram() {
        // The driver's percentiles are exactly the obs histogram's
        // estimates — same buckets, same nearest-rank rule — so bench
        // reports and `stair dev metrics` quantiles are comparable.
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let m = DevMeasurement::from_totals(100, 100, 1.0, &h);
        let snap = h.snapshot();
        assert_eq!(m.lat_p50_us, snap.p50() as f64);
        assert_eq!(m.lat_p99_us, snap.p99() as f64);
        assert_eq!(m.lat_max_us, 100.0);
        assert_eq!(m.latency, snap);
        // Bucket-bound guarantee: exact ≤ estimate < 2·exact.
        assert!(m.lat_p50_us >= 50.0 && m.lat_p50_us < 100.0);
        assert!(m.lat_p99_us >= 99.0 && m.lat_p99_us < 198.0);

        let empty = DevMeasurement::from_totals(0, 0, 1.0, &Histogram::new());
        assert_eq!(empty.lat_p50_us, 0.0);
        assert_eq!(empty.lat_max_us, 0.0);
    }
}
