//! The device-generic throughput driver — the one measurement core
//! behind both `store_throughput` (a local [`StripeStore`]) and
//! `net_throughput` (TCP clients against an in-process server).
//!
//! Both harnesses used to carry their own timing loops; because every
//! backend now implements `stair_device::BlockDevice`, the workload
//! body, the per-thread region carving, the warmup policy, and the
//! timing arithmetic live here once. A measurement drives one device
//! handle per thread over disjoint regions — for an in-process store
//! that is the same `&StripeStore` on every thread (it is `Sync`), for
//! the wire it is one connection per thread — so the only contention is
//! whatever the backend really has (stripe locks, sockets, worker
//! pools).
//!
//! [`StripeStore`]: https://docs.rs/stair-store

use std::time::Instant;

use stair_device::BlockDevice;

/// A workload shape. Sequential ops stream `seq_io`-byte transfers;
/// random ops issue single `rand_io`-byte transfers at uniformly
/// pseudo-random aligned offsets (the small-I/O shape that exercises
/// the parity-delta path).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DevOp {
    /// Sequential writes of `seq_io` bytes.
    SeqWrite,
    /// Sequential reads of `seq_io` bytes.
    SeqRead,
    /// Random writes of `rand_io` bytes.
    RandWrite,
    /// Random reads of `rand_io` bytes.
    RandRead,
}

impl DevOp {
    /// The stable name used in reports (`seq_write`, `rand_read`, …).
    pub fn name(self) -> &'static str {
        match self {
            DevOp::SeqWrite => "seq_write",
            DevOp::SeqRead => "seq_read",
            DevOp::RandWrite => "rand_write",
            DevOp::RandRead => "rand_read",
        }
    }
}

/// Transfer sizes for [`measure_devices`].
#[derive(Clone, Copy, Debug)]
pub struct IoShape {
    /// Bytes per sequential transfer.
    pub seq_io: usize,
    /// Bytes per random transfer (usually one block).
    pub rand_io: usize,
}

/// One timed measurement: aggregated bytes/requests over wall-clock
/// seconds.
#[derive(Clone, Copy, Debug)]
pub struct DevMeasurement {
    /// Payload bytes transferred in the timed pass.
    pub bytes: usize,
    /// Requests issued in the timed pass.
    pub requests: usize,
    /// Wall-clock duration of the timed pass.
    pub seconds: f64,
}

impl DevMeasurement {
    /// Throughput in MiB/s.
    pub fn mb_per_s(&self) -> f64 {
        self.bytes as f64 / self.seconds / (1024.0 * 1024.0)
    }

    /// Request rate per second.
    pub fn req_per_s(&self) -> f64 {
        self.requests as f64 / self.seconds
    }
}

/// Runs `op` over `devs` — one device handle per thread, each confined
/// to a disjoint region of `[0, capacity)` — with one warmup pass (pays
/// connection setup and first-touch costs) followed by `passes` timed
/// passes.
///
/// # Panics
///
/// Panics if `devs` is empty, `capacity` is too small to give every
/// thread at least one sequential transfer, or a device call fails
/// (benchmarks want loud failures, not skewed numbers).
pub fn measure_devices(
    devs: &[&dyn BlockDevice],
    op: DevOp,
    capacity: usize,
    shape: IoShape,
    passes: usize,
) -> DevMeasurement {
    assert!(!devs.is_empty(), "need at least one device handle");
    let region = capacity / devs.len() / shape.seq_io * shape.seq_io;
    assert!(
        region >= shape.seq_io,
        "capacity {capacity} too small for {} thread(s) of {}-byte transfers",
        devs.len(),
        shape.seq_io
    );
    let pass = || -> (usize, usize) {
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (c, dev) in devs.iter().enumerate() {
                handles.push(scope.spawn(move || run_workload(*dev, op, c, region, shape)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("bench thread"))
                .fold((0, 0), |(b, r), (tb, tr)| (b + tb, r + tr))
        })
    };
    pass(); // warmup
    let start = Instant::now();
    let mut bytes = 0;
    let mut requests = 0;
    for _ in 0..passes.max(1) {
        let (b, r) = pass();
        bytes += b;
        requests += r;
    }
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    DevMeasurement {
        bytes,
        requests,
        seconds,
    }
}

/// The per-thread workload body shared by warmup and timed passes.
fn run_workload(
    dev: &dyn BlockDevice,
    op: DevOp,
    c: usize,
    region: usize,
    shape: IoShape,
) -> (usize, usize) {
    let base = (c * region) as u64;
    let mut bytes = 0usize;
    let mut requests = 0usize;
    match op {
        DevOp::SeqWrite => {
            let payload = pattern(shape.seq_io, c as u64);
            let mut at = 0;
            while at + shape.seq_io <= region {
                dev.write_at(base + at as u64, &payload).expect("write");
                bytes += shape.seq_io;
                requests += 1;
                at += shape.seq_io;
            }
        }
        DevOp::SeqRead => {
            let mut at = 0;
            while at + shape.seq_io <= region {
                let got = dev.read_at(base + at as u64, shape.seq_io).expect("read");
                assert_eq!(got.len(), shape.seq_io);
                bytes += shape.seq_io;
                requests += 1;
                at += shape.seq_io;
            }
        }
        DevOp::RandWrite | DevOp::RandRead => {
            let block = shape.rand_io;
            let slots = (region / block).max(1);
            let ops = (region / shape.seq_io).max(1) * (shape.seq_io / block).min(16);
            let payload = pattern(block, c as u64 + 7);
            let mut state = 0x9E3779B97F4A7C15u64.wrapping_add(c as u64);
            for _ in 0..ops {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let at = base + (((state >> 16) as usize % slots) * block) as u64;
                if op == DevOp::RandWrite {
                    dev.write_at(at, &payload).expect("rand write");
                } else {
                    let got = dev.read_at(at, block).expect("rand read");
                    assert_eq!(got.len(), block);
                }
                bytes += block;
                requests += 1;
            }
        }
    }
    (bytes, requests)
}

/// A deterministic per-thread byte pattern.
fn pattern(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(31).wrapping_add(seed * 131) % 251) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stair_store::{StoreOptions, StripeStore};

    #[test]
    fn measures_a_real_store_through_the_trait() {
        let dir = std::env::temp_dir().join(format!("stair-driver-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = StripeStore::create(
            &dir,
            &StoreOptions {
                code: "stair:8,4,2,1-1-2".parse().unwrap(),
                symbol: 64,
                stripes: 8,
            },
        )
        .expect("create store");
        let capacity = store.capacity() as usize;
        let dev: &dyn BlockDevice = &store;
        let shape = IoShape {
            seq_io: capacity / 2,
            rand_io: 64,
        };
        // Two handles to the same store = two concurrent threads.
        for op in [
            DevOp::SeqWrite,
            DevOp::SeqRead,
            DevOp::RandWrite,
            DevOp::RandRead,
        ] {
            let m = measure_devices(&[dev, dev], op, capacity, shape, 1);
            assert!(m.bytes > 0, "{op:?} moved no bytes");
            assert!(m.requests > 0);
            assert!(m.mb_per_s() > 0.0);
            assert!(m.req_per_s() > 0.0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
