//! Seeded key-distribution generators for the workload harnesses.
//!
//! Real traffic is skewed — a few hot stripes absorb most reads — and
//! the cache tier's whole value proposition lives in that skew, so the
//! bench axes need a deterministic zipfian sampler next to the uniform
//! one. Determinism matters twice: the same seed must replay the same
//! offset sequence on a cached and an uncached device (so byte-level
//! equality is checkable), and regenerated `BENCH_*.json` baselines
//! must be comparable run over run.

use std::fmt;
use std::str::FromStr;

/// How offsets are drawn across the block space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Dist {
    /// Consecutive slots in submission order (the batching baseline).
    Seq,
    /// Independent uniform draws.
    Uniform,
    /// Zipfian draws with the given exponent (`zipf:1.0` is the
    /// classic harmonic skew: rank `k` drawn ∝ `1/k^θ`).
    Zipf(f64),
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dist::Seq => write!(f, "seq"),
            Dist::Uniform => write!(f, "uniform"),
            Dist::Zipf(theta) => write!(f, "zipf:{theta}"),
        }
    }
}

impl FromStr for Dist {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "seq" => Ok(Dist::Seq),
            "uniform" => Ok(Dist::Uniform),
            _ => match s.strip_prefix("zipf:") {
                Some(theta) => {
                    let theta: f64 = theta
                        .parse()
                        .map_err(|_| format!("bad zipf exponent in `{s}`"))?;
                    if !(theta.is_finite() && theta > 0.0) {
                        return Err(format!("zipf exponent must be finite and > 0, got `{s}`"));
                    }
                    Ok(Dist::Zipf(theta))
                }
                None => Err(format!(
                    "unknown distribution `{s}` (want seq, uniform, or zipf:<theta>)"
                )),
            },
        }
    }
}

/// A deterministic slot sampler over `[0, slots)`.
///
/// The RNG is the same 64-bit LCG the other harness loops use; zipf
/// draws invert a precomputed CDF by binary search, and ranks are
/// scattered over the slot space by a coprime stride so the hot set
/// does not collapse onto one stripe.
pub struct Sampler {
    dist: Dist,
    slots: usize,
    state: u64,
    at: usize,
    /// `cdf[k]` = P(rank ≤ k), strictly increasing to 1.0.
    cdf: Vec<f64>,
    /// Rank → slot stride (coprime with `slots`).
    stride: usize,
}

impl Sampler {
    /// Builds a sampler over `slots` slots. Identical `(dist, slots,
    /// seed)` always produce the identical sequence.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(dist: Dist, slots: usize, seed: u64) -> Self {
        assert!(slots > 0, "sampler needs at least one slot");
        let cdf = match dist {
            Dist::Zipf(theta) => {
                let mut weights: Vec<f64> =
                    (1..=slots).map(|k| 1.0 / (k as f64).powf(theta)).collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                for w in &mut weights {
                    acc += *w / total;
                    *w = acc;
                }
                if let Some(last) = weights.last_mut() {
                    *last = 1.0; // guard the tail against rounding
                }
                weights
            }
            Dist::Seq | Dist::Uniform => Vec::new(),
        };
        // A golden-ratio-ish odd stride, stepped until coprime, keeps
        // adjacent ranks on distant slots (and distinct stripes).
        let mut stride = 0x9E37_79B9usize % slots;
        while slots > 1 && (stride < 2 || gcd(stride, slots) != 1) {
            stride += 1;
        }
        if slots == 1 {
            stride = 0;
        }
        Sampler {
            dist,
            slots,
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
            at: 0,
            cdf,
            stride,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state
    }

    /// The next slot index in `[0, slots)`.
    pub fn next_slot(&mut self) -> usize {
        match self.dist {
            Dist::Seq => {
                let slot = self.at;
                self.at = (self.at + 1) % self.slots;
                slot
            }
            Dist::Uniform => (self.next_u64() >> 16) as usize % self.slots,
            Dist::Zipf(_) => {
                // 53 random bits → u ∈ [0, 1); invert the CDF.
                let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let rank = self.cdf.partition_point(|&p| p <= u);
                rank.min(self.slots - 1).wrapping_mul(self.stride) % self.slots
            }
        }
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_strings_round_trip() {
        for s in ["seq", "uniform", "zipf:1.0", "zipf:0.75"] {
            let d: Dist = s.parse().unwrap();
            let d2: Dist = d.to_string().parse().unwrap();
            assert_eq!(d, d2, "{s}");
        }
        for s in ["", "zipf", "zipf:", "zipf:0", "zipf:-1", "zipf:x", "pareto"] {
            assert!(s.parse::<Dist>().is_err(), "`{s}` must be rejected");
        }
    }

    #[test]
    fn identical_seeds_replay_identical_sequences() {
        for dist in [Dist::Seq, Dist::Uniform, Dist::Zipf(1.0)] {
            let mut a = Sampler::new(dist, 1024, 42);
            let mut b = Sampler::new(dist, 1024, 42);
            let seq_a: Vec<usize> = (0..512).map(|_| a.next_slot()).collect();
            let seq_b: Vec<usize> = (0..512).map(|_| b.next_slot()).collect();
            assert_eq!(seq_a, seq_b, "{dist}");
            let mut c = Sampler::new(dist, 1024, 43);
            let seq_c: Vec<usize> = (0..512).map(|_| c.next_slot()).collect();
            if dist != Dist::Seq {
                assert_ne!(seq_a, seq_c, "{dist} must depend on the seed");
            }
        }
    }

    #[test]
    fn samples_stay_in_bounds() {
        for dist in [Dist::Seq, Dist::Uniform, Dist::Zipf(1.0)] {
            for slots in [1usize, 2, 7, 1024] {
                let mut s = Sampler::new(dist, slots, 7);
                assert!(
                    (0..4096).all(|_| s.next_slot() < slots),
                    "{dist} slots={slots}"
                );
            }
        }
    }

    #[test]
    fn zipf_concentrates_and_uniform_does_not() {
        let slots = 4096usize;
        let draws = 100_000usize;
        let hot = |dist: Dist| -> f64 {
            let mut s = Sampler::new(dist, slots, 1);
            let mut counts = vec![0u32; slots];
            for _ in 0..draws {
                counts[s.next_slot()] += 1;
            }
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let top = slots / 100; // hottest 1% of slots
            counts[..top].iter().map(|&c| c as f64).sum::<f64>() / draws as f64
        };
        let zipf = hot(Dist::Zipf(1.0));
        let uniform = hot(Dist::Uniform);
        // Zipf(1.0) over 4096 ranks puts ~44% of draws on the top 1%;
        // uniform puts ~1% there (plus sampling noise).
        assert!(zipf > 0.35, "zipf hot-1% share {zipf}");
        assert!(uniform < 0.05, "uniform hot-1% share {uniform}");
    }

    #[test]
    fn zipf_ranks_scatter_across_the_slot_space() {
        // The two hottest ranks must not be adjacent slots (they would
        // otherwise share a stripe and overstate coalescing wins).
        let mut s = Sampler::new(Dist::Zipf(1.0), 4096, 9);
        let mut counts = vec![0u32; 4096];
        for _ in 0..50_000 {
            counts[s.next_slot()] += 1;
        }
        let mut by_heat: Vec<usize> = (0..4096).collect();
        by_heat.sort_unstable_by_key(|&i| std::cmp::Reverse(counts[i]));
        let (a, b) = (by_heat[0], by_heat[1]);
        assert!(a.abs_diff(b) > 8, "hottest slots {a} and {b} are adjacent");
    }
}
