//! Criterion benches behind Fig. 9 / Fig. 11: the three STAIR encoding
//! methods, and STAIR-vs-SD encode throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stair::{Config, EncodingMethod, StairCodec, Stripe};
use stair_bench::{worst_case_e, AnySd};

/// Upstairs vs downstairs vs standard on configurations chosen to favour
/// each method (§5.3's crossover in m').
fn bench_encoding_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding_methods");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let stripe_size = 2 * 1024 * 1024;
    for e in [vec![4], vec![2, 2], vec![1, 1, 1, 1]] {
        let (n, r, m) = (8usize, 16usize, 2usize);
        let config = Config::new(n, r, m, &e).expect("config");
        let symbol = stripe_size / (n * r);
        let codec: StairCodec = StairCodec::new(config.clone()).expect("codec");
        let mut stripe = Stripe::new(config, symbol).expect("stripe");
        stripe.fill_pattern(1);
        group.throughput(Throughput::Bytes((symbol * n * r) as u64));
        for method in [
            EncodingMethod::Upstairs,
            EncodingMethod::Downstairs,
            EncodingMethod::Standard,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{method:?}"), format!("e={e:?}")),
                &method,
                |b, &method| {
                    b.iter(|| codec.encode_with(method, &mut stripe).expect("encode"));
                },
            );
        }
    }
    group.finish();
}

/// STAIR vs SD encode at the paper's central configuration n = r = 16.
fn bench_encode_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_stair_vs_sd");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let stripe_size = 2 * 1024 * 1024;
    let (n, r, m) = (16usize, 16usize, 2usize);
    let symbol = stripe_size / (n * r);
    group.throughput(Throughput::Bytes((symbol * n * r) as u64));
    for s in 1..=3usize {
        let e = worst_case_e(n, r, m, s).expect("feasible e");
        let config = Config::new(n, r, m, &e).expect("config");
        let codec: StairCodec = StairCodec::new(config.clone()).expect("codec");
        let mut stripe = Stripe::new(config, symbol).expect("stripe");
        stripe.fill_pattern(1);
        group.bench_function(BenchmarkId::new("stair", s), |b| {
            b.iter(|| codec.encode(&mut stripe).expect("encode"));
        });
        let sd = AnySd::new(n, r, m, s).expect("sd construction");
        let mut sd_stripe = sd.stripe(symbol);
        sd_stripe.fill_pattern(1);
        group.bench_function(BenchmarkId::new("sd", s), |b| {
            b.iter(|| sd.encode(&mut sd_stripe).expect("encode"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encoding_methods, bench_encode_sweep);
criterion_main!(benches);
