//! Criterion benches for the stair-store engine with a codec axis:
//! sequential write, clean read, degraded read, and the parity-delta
//! small-write path, for each of the STAIR / SD / RS backends over the
//! same geometry (the paper's comparison on the real I/O path).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stair_code::CodecSpec;
use stair_store::{StoreOptions, StripeStore};

fn bench_store(c: &mut Criterion) {
    let specs: [CodecSpec; 3] = [
        "stair:8,16,2,1-2".parse().unwrap(),
        "sd:8,16,2,3".parse().unwrap(),
        "rs:8,16,2".parse().unwrap(),
    ];
    for spec in specs {
        bench_codec(c, &spec);
    }
}

fn bench_codec(c: &mut Criterion, spec: &CodecSpec) {
    let dir = std::env::temp_dir().join(format!(
        "stair-store-crit-{}-{}",
        spec.family(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let symbol = 4096usize;
    let opts = StoreOptions {
        code: spec.clone(),
        symbol,
        stripes: 8,
    };
    let store = StripeStore::create(&dir, &opts).expect("create");
    let geom = store.geometry().clone();
    let capacity = store.capacity() as usize;
    let payload: Vec<u8> = (0..capacity).map(|i| (i % 241) as u8).collect();
    store.write_at(0, &payload).expect("prefill");

    let mut group = c.benchmark_group(format!("store/{}", spec.family()));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.throughput(Throughput::Bytes(capacity as u64));
    group.bench_function("sequential_write", |b| {
        b.iter(|| store.write_at(0, &payload).expect("write"))
    });
    group.bench_function("sequential_read_clean", |b| {
        b.iter(|| store.read_at(0, capacity).expect("read"))
    });

    // Small write: one block, parity-delta path.
    let block = vec![0xE7u8; symbol];
    group.throughput(Throughput::Bytes(symbol as u64));
    group.bench_function("small_write_delta", |b| {
        b.iter(|| store.write_at(3 * symbol as u64, &block).expect("delta"))
    });

    // Degrade the array: the full m-device budget, plus a burst (in a
    // still-healthy device) where covered; derived from the geometry so
    // any spec works.
    for dev in 0..geom.m {
        store.fail_device(dev).expect("fail");
    }
    if geom.burst > 0 {
        store
            .corrupt_sectors(geom.m, 4, 0, geom.burst.min(2).min(geom.r))
            .expect("burst");
    }
    group.throughput(Throughput::Bytes(capacity as u64));
    group.bench_function("sequential_read_degraded", |b| {
        b.iter(|| store.read_at(0, capacity).expect("degraded read"))
    });
    group.finish();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
