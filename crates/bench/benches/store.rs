//! Criterion benches for the stair-store engine: sequential write, clean
//! read, degraded read, and the parity-delta small-write path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stair_store::{StoreOptions, StripeStore};

fn bench_store(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("stair-store-crit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = StoreOptions {
        n: 8,
        r: 16,
        m: 2,
        e: vec![1, 2],
        symbol: 4096,
        stripes: 8,
    };
    let store = StripeStore::create(&dir, &opts).expect("create");
    let capacity = store.capacity() as usize;
    let payload: Vec<u8> = (0..capacity).map(|i| (i % 241) as u8).collect();
    store.write_at(0, &payload).expect("prefill");

    let mut group = c.benchmark_group("store");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.throughput(Throughput::Bytes(capacity as u64));
    group.bench_function("sequential_write", |b| {
        b.iter(|| store.write_at(0, &payload).expect("write"))
    });
    group.bench_function("sequential_read_clean", |b| {
        b.iter(|| store.read_at(0, capacity).expect("read"))
    });

    // Small write: one block, parity-delta path.
    let block = vec![0xE7u8; opts.symbol];
    group.throughput(Throughput::Bytes(opts.symbol as u64));
    group.bench_function("small_write_delta", |b| {
        b.iter(|| {
            store
                .write_at(3 * opts.symbol as u64, &block)
                .expect("delta")
        })
    });

    // Degrade the array: m failed devices + a burst.
    store.fail_device(2).expect("fail");
    store.fail_device(5).expect("fail");
    store.corrupt_sectors(7, 4, 2, 2).expect("burst");
    group.throughput(Throughput::Bytes(capacity as u64));
    group.bench_function("sequential_read_degraded", |b| {
        b.iter(|| store.read_at(0, capacity).expect("degraded read"))
    });
    group.finish();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
