//! Ablations on the Galois-field substrate: the split-table `Mult_XOR`
//! region kernel vs a naive per-byte log/exp loop, and GF(2^8) vs GF(2^16)
//! region throughput (the word-size effect of §6.2.1).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stair_gf::{BitMatrix8, Field, Gf16, Gf8};

fn bench_gf_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf_region_kernels");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let len = 64 * 1024;
    let src = vec![0xA7u8; len];
    let mut dst = vec![0x11u8; len];
    group.throughput(Throughput::Bytes(len as u64));

    group.bench_function("gf8_split_table", |b| {
        b.iter(|| Gf8::mult_xor_region(&mut dst, &src, 0x53));
    });

    group.bench_function("gf8_per_byte_logexp", |b| {
        b.iter(|| {
            for (d, &s) in dst.iter_mut().zip(&src) {
                *d ^= Gf8::mul(0x53, s);
            }
        });
    });

    group.bench_function("gf16_split_table", |b| {
        b.iter(|| Gf16::mult_xor_region(&mut dst, &src, 0x5353));
    });

    // XOR-only bit-matrix kernel (Cauchy-RS-as-XOR, refs [8, 38]).
    let bm = BitMatrix8::for_constant(0x53);
    group.bench_function("gf8_bitmatrix_xor", |b| {
        b.iter(|| bm.mult_xor_region_bitsliced(&mut dst, &src));
    });
    group.finish();
}

fn bench_gf_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf_width_effect");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    // A full row-parity computation: 14 data symbols into 2 parities,
    // 8 KiB symbols — once over GF(2^8), once over GF(2^16).
    let k = 14usize;
    let symbol = 8192usize;
    let data: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8; symbol]).collect();
    let mut p = vec![0u8; symbol];
    group.throughput(Throughput::Bytes((k * symbol) as u64));
    group.bench_function("w8", |b| {
        b.iter(|| {
            p.fill(0);
            for (i, d) in data.iter().enumerate() {
                Gf8::mult_xor_region(&mut p, d, Gf8::exp(i));
            }
        });
    });
    group.bench_function("w16", |b| {
        b.iter(|| {
            p.fill(0);
            for (i, d) in data.iter().enumerate() {
                Gf16::mult_xor_region(&mut p, d, Gf16::exp(i));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_gf_kernels, bench_gf_width);
criterion_main!(benches);
