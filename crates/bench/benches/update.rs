//! Criterion bench behind Fig. 14's operational meaning: the latency of an
//! in-place data-sector update scales with the configuration's update
//! penalty, which for fixed s grows with e_max (§6.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stair::{Config, StairCodec, Stripe};

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("sector_update");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let (n, r, m) = (16usize, 16usize, 2usize);
    let symbol = 4096usize;
    group.throughput(Throughput::Bytes(symbol as u64));
    for e in [
        vec![1, 1, 1, 1],
        vec![1, 1, 2],
        vec![2, 2],
        vec![1, 3],
        vec![4],
    ] {
        let config = Config::new(n, r, m, &e).expect("config");
        let codec: StairCodec = StairCodec::new(config.clone()).expect("codec");
        let mut stripe = Stripe::new(config, symbol).expect("stripe");
        stripe.fill_pattern(1);
        codec.encode(&mut stripe).expect("encode");
        let new_contents = vec![0xD7u8; symbol];
        let penalty = codec.relations().update_penalty().average;
        group.bench_with_input(
            BenchmarkId::new("update", format!("e={e:?} penalty={penalty:.1}")),
            &e,
            |b, _| {
                b.iter(|| {
                    codec
                        .update_data(&mut stripe, 0, 0, &new_contents)
                        .expect("update");
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_update);
criterion_main!(benches);
