//! Criterion benches behind Fig. 13: worst-case decode throughput, plus
//! the §4.3 practical-decoding ablation (local row repair vs global
//! upstairs decoding).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stair::{Config, StairCodec, Stripe};
use stair_bench::{worst_case_e, AnySd, StairBench};

fn bench_decode_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_stair_vs_sd");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let stripe_size = 2 * 1024 * 1024;
    let (n, r, m) = (16usize, 16usize, 2usize);
    let symbol = stripe_size / (n * r);
    group.throughput(Throughput::Bytes((symbol * n * r) as u64));
    for s in 1..=3usize {
        let e = worst_case_e(n, r, m, s).expect("feasible e");
        let mut bench = StairBench::new(n, r, m, &e, stripe_size);
        bench.codec.encode(&mut bench.stripe).expect("encode");
        let erased = bench.worst_case_erasures();
        let plan = bench.codec.plan_decode(&erased).expect("plan");
        group.bench_function(BenchmarkId::new("stair", s), |b| {
            b.iter(|| {
                bench
                    .codec
                    .apply_plan(&plan, &mut bench.stripe)
                    .expect("decode")
            });
        });

        let sd = AnySd::new(n, r, m, s).expect("sd construction");
        let mut sd_stripe = sd.stripe(symbol);
        sd_stripe.fill_pattern(1);
        sd.encode(&mut sd_stripe).expect("encode");
        let sd_erased = sd.worst_case_erasures(r);
        group.bench_function(BenchmarkId::new("sd", s), |b| {
            b.iter(|| sd.decode(&mut sd_stripe, &sd_erased).expect("decode"));
        });
    }
    group.finish();
}

/// §4.3 ablation: a failure pattern repairable row-locally (≤ m per row)
/// vs the same number of lost sectors concentrated to force global
/// (upstairs) decoding.
fn bench_practical_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("practical_vs_global_decode");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let (n, r, m) = (16usize, 16usize, 2usize);
    let symbol = 8192usize;
    let config = Config::new(n, r, m, &[1, 1, 2]).expect("config");
    let codec: StairCodec = StairCodec::new(config.clone()).expect("codec");
    let mut stripe = Stripe::new(config, symbol).expect("stripe");
    stripe.fill_pattern(1);
    codec.encode(&mut stripe).expect("encode");
    group.throughput(Throughput::Bytes((symbol * n * r) as u64));

    // 4 sectors scattered over 4 rows: pure row-local repair.
    let local: Vec<(usize, usize)> = vec![(0, 0), (1, 3), (2, 5), (3, 9)];
    let local_plan = codec.plan_decode(&local).expect("plan");
    group.bench_function("local_rows", |b| {
        b.iter(|| codec.apply_plan(&local_plan, &mut stripe).expect("decode"));
    });

    // 4 sectors in the (1,1,2) worst-case shape: needs global parities.
    let global: Vec<(usize, usize)> = vec![(15, 0), (15, 1), (14, 2), (15, 2)];
    let global_plan = codec.plan_decode(&global).expect("plan");
    group.bench_function("global_upstairs", |b| {
        b.iter(|| codec.apply_plan(&global_plan, &mut stripe).expect("decode"));
    });
    group.finish();
}

criterion_group!(benches, bench_decode_sweep, bench_practical_decode);
criterion_main!(benches);
