//! Monte-Carlo estimation of stripe-loss probabilities, cross-validating
//! the analytical `P_str` enumerator of `stair-reliability` (§7, Appendix
//! B) against sampled failures.

use parking_lot::Mutex;
use stair_reliability::{Scheme, SectorModel};

use crate::FailureInjector;

/// A Monte-Carlo estimate with its standard error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Estimated probability.
    pub p: f64,
    /// Number of trials.
    pub trials: u64,
    /// Binomial standard error `√(p(1−p)/trials)`.
    pub std_err: f64,
}

impl Estimate {
    fn from_hits(hits: u64, trials: u64) -> Self {
        let p = hits as f64 / trials as f64;
        Estimate {
            p,
            trials,
            std_err: (p * (1.0 - p) / trials as f64).sqrt(),
        }
    }
}

/// Estimates `P_str` for a scheme by sampling per-chunk failures for the
/// `n − m` non-failed chunks of a critical-mode stripe and testing the
/// scheme's coverage, sharded across `threads` worker threads.
///
/// # Panics
///
/// Panics if `trials` or `threads` is zero, or on invalid model parameters
/// (propagated from [`FailureInjector`]).
#[allow(clippy::too_many_arguments)] // experiment knobs are clearest flat
pub fn estimate_p_str(
    scheme: &Scheme,
    n: usize,
    m: usize,
    r: usize,
    p_sec: f64,
    model: &SectorModel,
    trials: u64,
    threads: usize,
    seed: u64,
) -> Estimate {
    assert!(
        trials > 0 && threads > 0,
        "need positive trials and threads"
    );
    assert!(n > m, "need n > m");
    let chunks = n - m;
    let hits = Mutex::new(0u64);
    crossbeam::thread::scope(|scope| {
        for t in 0..threads {
            let share = trials / threads as u64
                + if (t as u64) < trials % threads as u64 {
                    1
                } else {
                    0
                };
            let hits = &hits;
            let scheme = scheme.clone();
            let model = model.clone();
            scope.spawn(move |_| {
                let mut inj = match &model {
                    SectorModel::Independent => {
                        FailureInjector::independent(r, p_sec, seed ^ ((t as u64 + 1) * 0x9E37))
                    }
                    SectorModel::Correlated(b) => FailureInjector::correlated(
                        r,
                        p_sec,
                        b.clone(),
                        seed ^ ((t as u64 + 1) * 0x9E37),
                    ),
                };
                let mut local = 0u64;
                for _ in 0..share {
                    let counts = inj.sample_counts(chunks);
                    if !scheme.covers_counts(&counts) {
                        local += 1;
                    }
                }
                *hits.lock() += local;
            });
        }
    })
    .expect("monte-carlo worker panicked");
    Estimate::from_hits(hits.into_inner(), trials)
}

#[cfg(test)]
mod tests {
    use stair_reliability::{p_chk, p_str, BurstModel};

    use super::*;

    /// The Monte-Carlo estimate must agree with the analytical enumerator
    /// within a few standard errors (independent model).
    #[test]
    fn monte_carlo_matches_analytic_independent() {
        let (n, m, r) = (8, 1, 8);
        let p_sec = 0.02; // inflated so events are observable
        let scheme = Scheme::stair(&[1, 2]);
        let est = estimate_p_str(
            &scheme,
            n,
            m,
            r,
            p_sec,
            &SectorModel::Independent,
            400_000,
            4,
            0xFEED,
        );
        let pchk = p_chk(&SectorModel::Independent, p_sec, r);
        let analytic = p_str(&scheme, n, m, &pchk);
        assert!(
            (est.p - analytic).abs() < 5.0 * est.std_err.max(1e-6),
            "MC {} ± {} vs analytic {analytic}",
            est.p,
            est.std_err
        );
    }

    /// Correlated model: the sampler (bursts started per sector, clipped at
    /// chunk ends, possibly overlapping) is *more* detailed than the
    /// paper's first-order Eq. (15)–(17); they must still agree closely at
    /// realistic rates.
    #[test]
    fn monte_carlo_matches_analytic_correlated() {
        let (n, m, r) = (8, 1, 16);
        let p_sec = 0.01;
        let burst = BurstModel::from_pareto(0.9, 1.0, r);
        let scheme = Scheme::stair(&[2]);
        let est = estimate_p_str(
            &scheme,
            n,
            m,
            r,
            p_sec,
            &SectorModel::Correlated(burst.clone()),
            400_000,
            4,
            0xBEEF,
        );
        let pchk = p_chk(&SectorModel::Correlated(burst), p_sec, r);
        let analytic = p_str(&scheme, n, m, &pchk);
        // First-order model vs exact sampling: allow 10% relative slack
        // plus sampling noise.
        let tol = 0.1 * analytic + 5.0 * est.std_err;
        assert!(
            (est.p - analytic).abs() < tol,
            "MC {} ± {} vs analytic {analytic}",
            est.p,
            est.std_err
        );
    }

    /// RS vs STAIR ordering must hold in sampled form too.
    #[test]
    fn sampled_ordering_rs_vs_stair() {
        let (n, m, r) = (6, 1, 8);
        let p_sec = 0.03;
        let rs = estimate_p_str(
            &Scheme::reed_solomon(),
            n,
            m,
            r,
            p_sec,
            &SectorModel::Independent,
            200_000,
            2,
            7,
        );
        let st = estimate_p_str(
            &Scheme::stair(&[1, 1]),
            n,
            m,
            r,
            p_sec,
            &SectorModel::Independent,
            200_000,
            2,
            7,
        );
        assert!(
            rs.p > st.p,
            "RS {} must lose more stripes than STAIR {}",
            rs.p,
            st.p
        );
    }
}
