//! Parallel stripe coding: stripes are independent (§2, "each stripe is
//! independently protected"), so encoding and repairing an array
//! parallelizes trivially across stripes. The paper makes the same point
//! for CPU scaling ("the encoding operations can also be parallelized with
//! modern multi-core CPUs", §6.2.1).

use stair::{DecodePlan, StairCodec, Stripe};

use crate::Error;

/// Encodes many stripes with one codec across `threads` worker threads.
///
/// # Errors
///
/// Returns the first codec error encountered (none are expected for
/// well-formed stripes).
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn encode_stripes(
    codec: &StairCodec,
    stripes: &mut [Stripe],
    threads: usize,
) -> Result<(), Error> {
    assert!(threads > 0, "need at least one thread");
    let shard = stripes.len().div_ceil(threads).max(1);
    let results = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in stripes.chunks_mut(shard) {
            handles.push(scope.spawn(move |_| {
                for stripe in chunk {
                    codec.encode(stripe)?;
                }
                Ok::<(), stair::Error>(())
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("encode worker panicked");
    for r in results {
        r?;
    }
    Ok(())
}

/// Applies one decode plan to many stripes in parallel (the common rebuild
/// case: a device failure erases the *same* coordinates in every stripe).
///
/// # Errors
///
/// Returns the first codec error encountered.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn repair_stripes(
    codec: &StairCodec,
    plan: &DecodePlan,
    stripes: &mut [Stripe],
    threads: usize,
) -> Result<(), Error> {
    assert!(threads > 0, "need at least one thread");
    let shard = stripes.len().div_ceil(threads).max(1);
    let results = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in stripes.chunks_mut(shard) {
            handles.push(scope.spawn(move |_| {
                for stripe in chunk {
                    codec.apply_plan(plan, stripe)?;
                }
                Ok::<(), stair::Error>(())
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("repair worker panicked");
    for r in results {
        r?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stair::Config;

    fn stripes(config: &Config, count: usize) -> Vec<Stripe> {
        (0..count)
            .map(|i| {
                let mut s = Stripe::new(config.clone(), 32).unwrap();
                s.fill_pattern(i as u8);
                s
            })
            .collect()
    }

    #[test]
    fn parallel_encode_matches_serial() {
        let config = Config::new(8, 8, 2, &[1, 2]).unwrap();
        let codec = StairCodec::new(config.clone()).unwrap();
        let mut parallel = stripes(&config, 17);
        let mut serial = parallel.clone();
        encode_stripes(&codec, &mut parallel, 4).unwrap();
        for s in &mut serial {
            codec.encode(s).unwrap();
        }
        assert_eq!(parallel, serial);
    }

    #[test]
    fn parallel_repair_rebuilds_failed_device() {
        let config = Config::new(8, 8, 2, &[1, 2]).unwrap();
        let codec = StairCodec::new(config.clone()).unwrap();
        let mut all = stripes(&config, 9);
        encode_stripes(&codec, &mut all, 3).unwrap();
        let pristine = all.clone();
        // Device 5 dies: same erasure coordinates in every stripe.
        let erased: Vec<(usize, usize)> = (0..8).map(|row| (row, 5)).collect();
        for s in &mut all {
            s.erase(&erased).unwrap();
        }
        let plan = codec.plan_decode(&erased).unwrap();
        repair_stripes(&codec, &plan, &mut all, 3).unwrap();
        assert_eq!(all, pristine);
    }

    #[test]
    fn more_threads_than_stripes_is_fine() {
        let config = Config::new(6, 4, 1, &[1]).unwrap();
        let codec = StairCodec::new(config.clone()).unwrap();
        let mut few = stripes(&config, 2);
        encode_stripes(&codec, &mut few, 16).unwrap();
    }
}
