//! A storage-array simulator for exercising STAIR codes end to end.
//!
//! The paper's reliability analysis (§7) is driven by *field* failure data
//! [1, 41] that is not publicly available; the paper itself reduces that
//! data to fitted models (independent sector failures, and Pareto-tailed
//! failure bursts parameterized by `(b1, α)`). This crate simulates those
//! models so the same code paths can be exercised synthetically:
//!
//! * [`StorageArray`] — a byte-level array of `n` devices holding many
//!   STAIR-coded stripes, with device failure, latent-sector-error, and
//!   burst injection, plus scrubbing and rebuild (§8's operational
//!   context for erasure codes);
//! * [`FailureInjector`] — samples sector failures from the independent or
//!   correlated models of §7.1.2;
//! * [`montecarlo`] — Monte-Carlo estimation of the stripe-loss probability
//!   `P_str`, used to cross-validate the analytical enumerator in
//!   `stair-reliability`;
//! * [`parallel`] — multi-threaded stripe encoding/repair (stripes are
//!   independent, §2).
//!
//! # Example
//!
//! ```
//! use stair::Config;
//! use stair_arraysim::StorageArray;
//!
//! let config = Config::new(8, 16, 2, &[1, 2])?;
//! let mut array = StorageArray::new(config, 512, 16)?;
//! array.write_blocks(0xAB)?;
//!
//! array.fail_device(3);
//! array.inject_burst(7, 5, 6, 2); // stripe 7, device 5, sectors 6..8
//! array.repair_all()?;
//! assert!(array.verify_blocks(0xAB).is_ok());
//! # Ok::<(), stair_arraysim::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod error;
mod failure;
pub mod montecarlo;
pub mod parallel;

pub use array::{ScrubReport, StorageArray};
pub use error::Error;
pub use failure::FailureInjector;
