//! The byte-level storage array: devices × stripes of STAIR-coded sectors.

use std::collections::BTreeSet;

use stair::{Config, StairCodec, Stripe};

use crate::Error;

/// Result of a scrub or repair pass.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct ScrubReport {
    /// Stripes that needed repair.
    pub stripes_repaired: usize,
    /// Individual sectors reconstructed.
    pub sectors_repaired: usize,
    /// Stripes that could not be repaired (data loss).
    pub stripes_lost: usize,
}

/// An array of `n` devices, each holding one chunk of every stripe, coded
/// with a STAIR code.
///
/// The array tracks *known* damage (failed devices, reported latent sector
/// errors) the way a real system would via I/O errors and checksums;
/// [`StorageArray::repair_all`] replays that damage through the codec.
#[derive(Clone, Debug)]
pub struct StorageArray {
    codec: StairCodec,
    stripes: Vec<Stripe>,
    /// Devices currently failed (whole chunks unreadable in every stripe).
    failed_devices: BTreeSet<usize>,
    /// Known latent sector errors: (stripe, row, col).
    latent: BTreeSet<(usize, usize, usize)>,
}

impl StorageArray {
    /// Builds an array of `stripes` STAIR stripes with the given sector
    /// size.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] for a zero stripe count and
    /// propagates codec construction failures.
    pub fn new(config: Config, symbol_size: usize, stripes: usize) -> Result<Self, Error> {
        if stripes == 0 {
            return Err(Error::InvalidParams("need at least one stripe".into()));
        }
        let codec = StairCodec::new(config.clone())?;
        let stripes = (0..stripes)
            .map(|_| Stripe::new(config.clone(), symbol_size))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StorageArray {
            codec,
            stripes,
            failed_devices: BTreeSet::new(),
            latent: BTreeSet::new(),
        })
    }

    /// The array's STAIR configuration.
    pub fn config(&self) -> &Config {
        self.codec.config()
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Devices currently failed.
    pub fn failed_devices(&self) -> Vec<usize> {
        self.failed_devices.iter().copied().collect()
    }

    /// Known latent sector errors.
    pub fn latent_errors(&self) -> usize {
        self.latent.len()
    }

    /// Fills every stripe with a deterministic payload derived from `tag`
    /// and encodes it.
    ///
    /// # Errors
    ///
    /// Propagates codec errors (none expected for a valid array).
    pub fn write_blocks(&mut self, tag: u8) -> Result<(), Error> {
        for (idx, stripe) in self.stripes.iter_mut().enumerate() {
            stripe.fill_pattern(tag.wrapping_add(idx as u8));
            self.codec.encode(stripe)?;
        }
        Ok(())
    }

    /// Verifies every stripe's payload against the `tag` pattern written by
    /// [`StorageArray::write_blocks`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on the first mismatching stripe.
    pub fn verify_blocks(&self, tag: u8) -> Result<(), Error> {
        for (idx, stripe) in self.stripes.iter().enumerate() {
            let mut expect = Stripe::new(self.config().clone(), stripe.symbol_size())?;
            expect.fill_pattern(tag.wrapping_add(idx as u8));
            if stripe.read_data()? != expect.read_data()? {
                return Err(Error::Corrupt(format!("stripe {idx} payload mismatch")));
            }
        }
        Ok(())
    }

    /// Marks a device failed: every sector of its chunk is lost in every
    /// stripe.
    ///
    /// # Panics
    ///
    /// Panics if `device ≥ n`.
    pub fn fail_device(&mut self, device: usize) {
        assert!(device < self.config().n(), "device {device} out of range");
        self.failed_devices.insert(device);
        // Physically clobber the data to model the loss.
        for stripe in &mut self.stripes {
            for row in 0..self.codec.config().r() {
                stripe.cell_mut(row, device).fill(0);
            }
        }
    }

    /// Injects a latent error at one sector.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range coordinates.
    pub fn inject_sector_failure(&mut self, stripe: usize, device: usize, row: usize) {
        assert!(stripe < self.stripes.len(), "stripe {stripe} out of range");
        assert!(
            device < self.config().n() && row < self.config().r(),
            "sector out of range"
        );
        self.stripes[stripe].cell_mut(row, device).fill(0);
        self.latent.insert((stripe, row, device));
    }

    /// Injects a burst of `len` contiguous failed sectors in one chunk
    /// (§7.1.2's correlated failure mode), clipped at the chunk end per the
    /// paper's assumption that bursts do not span chunks.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range coordinates.
    pub fn inject_burst(&mut self, stripe: usize, device: usize, start_row: usize, len: usize) {
        let r = self.config().r();
        assert!(start_row < r, "burst start out of range");
        for row in start_row..(start_row + len).min(r) {
            self.inject_sector_failure(stripe, device, row);
        }
    }

    /// Repairs all known damage: every stripe with failed-device chunks or
    /// latent errors is decoded, then the failed-device set and the latent
    /// list are cleared (modeling replacement + rebuild).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DataLoss`] if any stripe's damage exceeds the
    /// code's coverage; the report inside describes how far repair got.
    pub fn repair_all(&mut self) -> Result<ScrubReport, Error> {
        let mut report = ScrubReport::default();
        let r = self.config().r();
        for idx in 0..self.stripes.len() {
            let mut erased: Vec<(usize, usize)> = Vec::new();
            for &d in &self.failed_devices {
                erased.extend((0..r).map(|row| (row, d)));
            }
            erased.extend(
                self.latent
                    .iter()
                    .filter(|&&(s, _, _)| s == idx)
                    .map(|&(_, row, col)| (row, col))
                    // A latent error inside an already-failed device would
                    // duplicate the device's erasures.
                    .filter(|&(_, col)| !self.failed_devices.contains(&col)),
            );
            if erased.is_empty() {
                continue;
            }
            match self.codec.decode(&mut self.stripes[idx], &erased) {
                Ok(()) => {
                    report.stripes_repaired += 1;
                    report.sectors_repaired += erased.len();
                }
                Err(stair::Error::Unrecoverable { .. }) => {
                    report.stripes_lost += 1;
                }
                Err(e) => return Err(e.into()),
            }
        }
        if report.stripes_lost > 0 {
            return Err(Error::DataLoss(format!(
                "{} of {} stripes unrecoverable",
                report.stripes_lost,
                self.stripes.len()
            )));
        }
        self.failed_devices.clear();
        self.latent.clear();
        Ok(report)
    }

    /// Scrub: repair only the latent sector errors (no failed devices),
    /// modeling a periodic background scrub [29, 41, 43].
    ///
    /// # Errors
    ///
    /// Returns [`Error::DataLoss`] if a stripe's latent errors alone exceed
    /// coverage.
    pub fn scrub(&mut self) -> Result<ScrubReport, Error> {
        let mut report = ScrubReport::default();
        let latent: Vec<(usize, usize, usize)> = self.latent.iter().copied().collect();
        let mut by_stripe: std::collections::BTreeMap<usize, Vec<(usize, usize)>> =
            Default::default();
        for (s, row, col) in latent {
            if !self.failed_devices.contains(&col) {
                by_stripe.entry(s).or_default().push((row, col));
            }
        }
        for (idx, erased) in by_stripe {
            match self.codec.decode(&mut self.stripes[idx], &erased) {
                Ok(()) => {
                    report.stripes_repaired += 1;
                    report.sectors_repaired += erased.len();
                    for (row, col) in erased {
                        self.latent.remove(&(idx, row, col));
                    }
                }
                Err(stair::Error::Unrecoverable { .. }) => report.stripes_lost += 1,
                Err(e) => return Err(e.into()),
            }
        }
        if report.stripes_lost > 0 {
            return Err(Error::DataLoss(format!(
                "{} stripes unscrubbable",
                report.stripes_lost
            )));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> StorageArray {
        let config = Config::new(8, 4, 2, &[1, 1, 2]).unwrap();
        let mut a = StorageArray::new(config, 16, 8).unwrap();
        a.write_blocks(5).unwrap();
        a
    }

    #[test]
    fn clean_array_verifies() {
        let a = array();
        a.verify_blocks(5).unwrap();
        assert!(matches!(a.verify_blocks(6), Err(Error::Corrupt(_))));
    }

    #[test]
    fn device_failures_and_bursts_repair() {
        let mut a = array();
        a.fail_device(0);
        a.fail_device(6);
        a.inject_burst(3, 4, 2, 2);
        a.inject_sector_failure(5, 2, 0);
        let report = a.repair_all().unwrap();
        assert_eq!(report.stripes_repaired, 8);
        a.verify_blocks(5).unwrap();
        assert!(a.failed_devices().is_empty());
    }

    #[test]
    fn scrub_repairs_latent_errors_only() {
        let mut a = array();
        a.inject_sector_failure(0, 1, 2);
        a.inject_sector_failure(4, 3, 3);
        let report = a.scrub().unwrap();
        assert_eq!(report.sectors_repaired, 2);
        assert_eq!(a.latent_errors(), 0);
        a.verify_blocks(5).unwrap();
    }

    #[test]
    fn damage_beyond_coverage_is_data_loss() {
        let mut a = array();
        a.fail_device(0);
        a.fail_device(1);
        a.fail_device(2);
        assert!(matches!(a.repair_all(), Err(Error::DataLoss(_))));
    }

    #[test]
    fn burst_clipped_at_chunk_end() {
        let mut a = array();
        a.inject_burst(0, 2, 3, 5); // only row 3 exists from start 3
        assert_eq!(a.latent_errors(), 1);
        a.scrub().unwrap();
        a.verify_blocks(5).unwrap();
    }
}
