//! Samplers for the paper's sector-failure models (§7.1.2), used to drive
//! the byte-level array and the Monte-Carlo estimators.

// Coordinate-indexed loops mirror the paper's (row, column) notation and
// stay symmetric with the write side; iterator adaptors would obscure that.
#![allow(clippy::needless_range_loop)]
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stair_reliability::BurstModel;

/// Samples sector failures for chunks of `r` sectors.
///
/// Under the independent model each sector fails with probability `p_sec`;
/// under the correlated model each sector *starts* a failure burst with
/// probability `p_sec / B` and the burst length is drawn from the fitted
/// `(b1, α)` distribution (clipped at the chunk end, matching the paper's
/// assumption that bursts do not span chunks).
#[derive(Clone, Debug)]
pub struct FailureInjector {
    r: usize,
    p_sec: f64,
    burst: Option<BurstModel>,
    rng: SmallRng,
}

impl FailureInjector {
    /// Independent sector failures.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p_sec ≤ 1` and `r ≥ 1`.
    pub fn independent(r: usize, p_sec: f64, seed: u64) -> Self {
        assert!(r >= 1 && (0.0..=1.0).contains(&p_sec));
        FailureInjector {
            r,
            p_sec,
            burst: None,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Correlated bursts with the given length distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p_sec ≤ 1` and the burst model matches `r`.
    pub fn correlated(r: usize, p_sec: f64, burst: BurstModel, seed: u64) -> Self {
        assert!(r >= 1 && (0.0..=1.0).contains(&p_sec));
        assert_eq!(burst.max_len(), r, "burst model truncation must equal r");
        FailureInjector {
            r,
            p_sec,
            burst: Some(burst),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Samples the failed-sector rows of one chunk.
    pub fn sample_chunk(&mut self) -> Vec<usize> {
        let mut failed = vec![false; self.r];
        match &self.burst {
            None => {
                for f in failed.iter_mut() {
                    if self.rng.gen::<f64>() < self.p_sec {
                        *f = true;
                    }
                }
            }
            Some(burst) => {
                let start_p = self.p_sec / burst.mean();
                for row in 0..self.r {
                    if self.rng.gen::<f64>() < start_p {
                        let len = sample_length(burst, &mut self.rng);
                        for k in row..(row + len).min(self.r) {
                            failed[k] = true;
                        }
                    }
                }
            }
        }
        failed
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| f.then_some(i))
            .collect()
    }

    /// Samples per-chunk failure *counts* for `chunks` chunks (what the
    /// stripe-level reliability model consumes).
    pub fn sample_counts(&mut self, chunks: usize) -> Vec<usize> {
        (0..chunks).map(|_| self.sample_chunk().len()).collect()
    }
}

fn sample_length(burst: &BurstModel, rng: &mut SmallRng) -> usize {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for len in 1..=burst.max_len() {
        acc += burst.fraction(len);
        if u < acc {
            return len;
        }
    }
    burst.max_len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_rate_matches() {
        let mut inj = FailureInjector::independent(16, 0.05, 42);
        let mut total = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            total += inj.sample_chunk().len();
        }
        let rate = total as f64 / (trials * 16) as f64;
        assert!((rate - 0.05).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn bursts_produce_contiguous_runs() {
        let burst = BurstModel::from_pareto(0.5, 1.0, 16);
        let mut inj = FailureInjector::correlated(16, 0.02, burst, 7);
        let mut saw_multi = false;
        for _ in 0..5_000 {
            let rows = inj.sample_chunk();
            if rows.len() >= 2 {
                // Rows from a single burst are contiguous; multiple bursts
                // may merge, but at this rate most multi-failures are one
                // burst.
                saw_multi = true;
            }
        }
        assert!(
            saw_multi,
            "correlated model should produce multi-sector chunks"
        );
    }

    #[test]
    fn correlated_overall_rate_tracks_p_sec() {
        let burst = BurstModel::from_pareto(0.98, 1.79, 16);
        let mut inj = FailureInjector::correlated(16, 0.02, burst, 11);
        let mut total = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            total += inj.sample_chunk().len();
        }
        let rate = total as f64 / (trials * 16) as f64;
        // Clipping at chunk ends loses a little mass; allow a wide band.
        assert!((rate - 0.02).abs() < 0.004, "rate {rate}");
    }
}
