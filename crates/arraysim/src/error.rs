//! Error type for the array simulator.

use core::fmt;

/// Errors returned by the simulator.
#[derive(Clone, Debug, Eq, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Invalid simulator parameters.
    InvalidParams(String),
    /// The requested device/stripe/sector does not exist.
    OutOfRange(String),
    /// A repair failed: the accumulated damage exceeds the code's coverage
    /// (a data-loss event).
    DataLoss(String),
    /// Stored data failed post-repair verification.
    Corrupt(String),
    /// Underlying STAIR codec error.
    Stair(stair::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParams(m) => write!(f, "invalid parameters: {m}"),
            Error::OutOfRange(m) => write!(f, "out of range: {m}"),
            Error::DataLoss(m) => write!(f, "data loss: {m}"),
            Error::Corrupt(m) => write!(f, "corruption detected: {m}"),
            Error::Stair(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Stair(e) => Some(e),
            _ => None,
        }
    }
}

impl From<stair::Error> for Error {
    fn from(e: stair::Error) -> Self {
        Error::Stair(e)
    }
}
