//! Unified report types shared by every backend.
//!
//! These replace the per-backend zoo (`stair_store::WriteReport` vs
//! `stair_net::protocol::WriteSummary`, a bare `StoreStatus` vs a
//! `Vec<StoreStatus>`, …): each backend converts its native reports
//! into these in its [`BlockDevice`](crate::BlockDevice) impl, so
//! consumers — the CLI, the benchmarks, the conformance tests — see one
//! shape regardless of where the bytes live.

/// Health and geometry of one erasure-coded shard. A single-store
/// backend reports exactly one; a sharded or remote backend reports one
/// per shard, in shard order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardHealth {
    /// Codec spec string (`stair:…`, `sd:…`, `rs:…`).
    pub codec: String,
    /// Logical capacity of this shard in bytes.
    pub capacity: u64,
    /// Logical block size in bytes.
    pub block_size: usize,
    /// Stripes in the shard.
    pub stripes: usize,
    /// Data blocks per stripe.
    pub blocks_per_stripe: usize,
    /// Whole-device failures the codec tolerates per stripe (`m`).
    pub device_tolerance: usize,
    /// Sector failures tolerated beyond the `m` devices (`s`).
    pub sector_tolerance: usize,
    /// Devices currently failed.
    pub failed_devices: Vec<usize>,
    /// Devices currently rebuilding.
    pub rebuilding_devices: Vec<usize>,
    /// Known-damaged sectors awaiting repair.
    pub known_bad_sectors: usize,
    /// Whether the shard's previous close checkpointed its journal
    /// (`false` after a crash until the next clean shutdown).
    pub clean_shutdown: bool,
    /// Journal records replayed when the shard opened (0 after a clean
    /// shutdown).
    pub replayed_records: u64,
}

impl ShardHealth {
    /// `true` when nothing is failed, rebuilding, or known-damaged.
    pub fn healthy(&self) -> bool {
        self.failed_devices.is_empty()
            && self.rebuilding_devices.is_empty()
            && self.known_bad_sectors == 0
    }
}

/// Point-in-time state of a cache tier sitting in front of a device —
/// reported by `cache:` devices inside [`DeviceStatus`] so `stair dev
/// status --json` shows the tier next to the shard health it fronts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheTierStatus {
    /// Read-tier byte budget.
    pub budget_bytes: u64,
    /// Block frames the budget buys.
    pub frames: usize,
    /// Frames currently holding a live block of the current generation.
    pub resident_blocks: usize,
    /// Coherence generation; scrub/repair/fault bumps drop every frame.
    pub generation: u64,
    /// Whether the write-back tier is enabled (`false` = write-through).
    pub write_back: bool,
    /// Dirty blocks buffered by the write-back tier, awaiting a drain.
    pub wb_buffered_blocks: usize,
    /// Reads served from the tier since open.
    pub hits: u64,
    /// Reads that had to fill from the inner device since open.
    pub misses: u64,
}

/// A whole device's health snapshot: the backend kind plus one
/// [`ShardHealth`] per shard.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeviceStatus {
    /// Backend scheme name (`"file"`, `"shards"`, `"tcp"`, or
    /// `"cache"` for a tiered wrapper).
    pub backend: String,
    /// Total logical capacity in bytes across all shards.
    pub capacity: u64,
    /// Logical block size in bytes.
    pub block_size: usize,
    /// Per-shard health, in shard order (never empty).
    pub shards: Vec<ShardHealth>,
    /// Cache-tier state when this device is a `cache:` wrapper; `None`
    /// for plain backends (and absent from their JSON, so uncached
    /// status shapes are unchanged).
    pub cache: Option<CacheTierStatus>,
}

impl DeviceStatus {
    /// `true` when every shard is healthy.
    pub fn healthy(&self) -> bool {
        self.shards.iter().all(ShardHealth::healthy)
    }
}

/// What a write did, aggregated across every shard and chunk it
/// touched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Bytes stored.
    pub bytes: u64,
    /// Logical blocks written.
    pub blocks_written: u64,
    /// Stripes touched.
    pub stripes_touched: u64,
    /// Full-stripe re-encodes.
    pub full_stripe_encodes: u64,
    /// Parity-delta updates.
    pub delta_updates: u64,
}

impl WriteOutcome {
    /// Folds another piece's outcome into this one — the merge every
    /// chunked or sharded write path uses to aggregate per-piece
    /// reports into one total.
    pub fn absorb(&mut self, other: &WriteOutcome) {
        self.bytes += other.bytes;
        self.blocks_written += other.blocks_written;
        self.stripes_touched += other.stripes_touched;
        self.full_stripe_encodes += other.full_stripe_encodes;
        self.delta_updates += other.delta_updates;
    }
}

/// Aggregate scrub outcome across every shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubOutcome {
    /// Stripes walked.
    pub stripes_scanned: u64,
    /// Sectors read and checksummed.
    pub sectors_verified: u64,
    /// Checksum mismatches found.
    pub mismatches: u64,
    /// Failed or rebuilding devices skipped.
    pub unavailable_devices: u64,
    /// Stale bad-sector records cleared.
    pub records_cleared: u64,
}

impl ScrubOutcome {
    /// `true` when everything verified clean.
    pub fn clean(&self) -> bool {
        self.mismatches == 0 && self.unavailable_devices == 0
    }

    /// Folds another shard's outcome into this one.
    pub fn absorb(&mut self, other: &ScrubOutcome) {
        self.stripes_scanned += other.stripes_scanned;
        self.sectors_verified += other.sectors_verified;
        self.mismatches += other.mismatches;
        self.unavailable_devices += other.unavailable_devices;
        self.records_cleared += other.records_cleared;
    }
}

/// Aggregate repair outcome across every shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Devices replaced and rebuilt.
    pub devices_replaced: u64,
    /// Stripes repaired.
    pub stripes_repaired: u64,
    /// Sectors rewritten.
    pub sectors_rewritten: u64,
    /// Stripes whose damage exceeded coverage.
    pub unrecoverable_stripes: u64,
}

impl RepairOutcome {
    /// `true` when nothing was beyond coverage.
    pub fn complete(&self) -> bool {
        self.unrecoverable_stripes == 0
    }

    /// Folds another shard's outcome into this one.
    pub fn absorb(&mut self, other: &RepairOutcome) {
        self.devices_replaced += other.devices_replaced;
        self.stripes_repaired += other.stripes_repaired;
        self.sectors_rewritten += other.sectors_rewritten;
        self.unrecoverable_stripes += other.unrecoverable_stripes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_outcomes_absorb_additively() {
        let mut total = WriteOutcome {
            bytes: 100,
            blocks_written: 2,
            stripes_touched: 1,
            full_stripe_encodes: 1,
            delta_updates: 0,
        };
        total.absorb(&WriteOutcome {
            bytes: 50,
            blocks_written: 1,
            stripes_touched: 1,
            full_stripe_encodes: 0,
            delta_updates: 1,
        });
        assert_eq!(
            total,
            WriteOutcome {
                bytes: 150,
                blocks_written: 3,
                stripes_touched: 2,
                full_stripe_encodes: 1,
                delta_updates: 1,
            }
        );
    }

    #[test]
    fn health_predicates() {
        let mut shard = ShardHealth::default();
        assert!(shard.healthy());
        shard.failed_devices.push(3);
        assert!(!shard.healthy());
        let status = DeviceStatus {
            backend: "file".into(),
            capacity: 0,
            block_size: 0,
            shards: vec![ShardHealth::default(), shard],
            cache: None,
        };
        assert!(!status.healthy());

        assert!(ScrubOutcome::default().clean());
        assert!(!ScrubOutcome {
            mismatches: 1,
            ..Default::default()
        }
        .clean());
        assert!(RepairOutcome::default().complete());
        assert!(!RepairOutcome {
            unrecoverable_stripes: 2,
            ..Default::default()
        }
        .complete());
    }

    #[test]
    fn scrub_and_repair_outcomes_absorb_additively() {
        let mut scrub = ScrubOutcome {
            stripes_scanned: 4,
            sectors_verified: 100,
            mismatches: 0,
            unavailable_devices: 1,
            records_cleared: 0,
        };
        scrub.absorb(&ScrubOutcome {
            stripes_scanned: 2,
            sectors_verified: 50,
            mismatches: 3,
            unavailable_devices: 0,
            records_cleared: 1,
        });
        assert_eq!(
            scrub,
            ScrubOutcome {
                stripes_scanned: 6,
                sectors_verified: 150,
                mismatches: 3,
                unavailable_devices: 1,
                records_cleared: 1,
            }
        );

        let mut repair = RepairOutcome {
            devices_replaced: 1,
            stripes_repaired: 4,
            sectors_rewritten: 16,
            unrecoverable_stripes: 0,
        };
        repair.absorb(&RepairOutcome {
            devices_replaced: 0,
            stripes_repaired: 1,
            sectors_rewritten: 4,
            unrecoverable_stripes: 2,
        });
        assert_eq!(
            repair,
            RepairOutcome {
                devices_replaced: 1,
                stripes_repaired: 5,
                sectors_rewritten: 20,
                unrecoverable_stripes: 2,
            }
        );
    }
}
