//! `stair-device`: one object-safe API over every storage backend.
//!
//! PRs 1–3 grew three parallel storage surfaces — the local
//! [`StripeStore`], the in-process sharded `ShardSet`, and the TCP
//! `Client`/`StripedClient` — that each re-declared
//! `read_at`/`write_at`/`status`/`scrub`/`repair` with divergent
//! receivers, error types, and report structs. This crate is the layer
//! that collapses them, exactly as `stair-code`'s `ErasureCode` trait
//! did for the codecs one level down:
//!
//! * **[`BlockDevice`]** — the object-safe data-path trait
//!   (`read_at`/`write_at`/`submit`/`flush`/`status`/`scrub`/`repair`),
//!   all on `&self`, all `Send + Sync`, so any backend works behind
//!   `Arc<dyn BlockDevice>`;
//! * **[`IoBatch`] / [`IoOp`] / [`BatchResult`]** — the scatter-gather
//!   batch types behind `submit`: many ops named up front so a backend
//!   can group them (per stripe locally, per shard remotely) instead of
//!   paying per-op locks, codec passes, and round trips;
//! * **[`FaultAdmin`]** — the fault-injection split
//!   (`fail_device`/`corrupt_sectors`); kept separate because remote or
//!   production deployments may refuse admin operations;
//! * **[`DeviceError`]** — the one error enum every backend's failures
//!   convert into (`stair_store::Error` and `stair_net::NetError`
//!   provide `From` impls);
//! * **[`DeviceStatus`]** / **[`WriteOutcome`]** / **[`ScrubOutcome`]**
//!   / **[`RepairOutcome`]** — unified report types replacing the
//!   per-backend `WriteReport`/`WriteSummary`/`ScrubReport`/… zoo;
//! * **[`DeviceSpec`]** — the URI-style grammar (`file:<dir>`,
//!   `shards:<root>?n=4`, `tcp:<addr>?lanes=4`) naming a backend; the
//!   `open_device()` registry in `stair-net` turns a spec into a live
//!   `Box<dyn BlockDevice>`, mirroring `stair_store::build_codec()`.
//!
//! * **[`Instrumented`]** — a wrapper recording per-op and per-batch
//!   latency, byte counts, and slow ops for any backend into a
//!   `stair-obs` registry; [`BlockDevice::metrics`] surfaces the
//!   combined snapshot.
//!
//! This crate depends only on `stair-obs` (itself dependency-free):
//! backends depend on it, not the other way round, so future layers
//! (write-back caches, replicas, async frontends) can slot in behind
//! the same trait without touching the existing engines.
//!
//! [`StripeStore`]: https://docs.rs/stair-store

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod batch;
mod error;
mod instrument;
mod report;
mod spec;

pub use api::{AdminDevice, BlockDevice, FaultAdmin};
pub use batch::{seed_results, BatchResult, IoBatch, IoOp, OpResult};
pub use error::DeviceError;
pub use instrument::Instrumented;
pub use report::{
    CacheTierStatus, DeviceStatus, RepairOutcome, ScrubOutcome, ShardHealth, WriteOutcome,
};
pub use spec::{DeviceSpec, CACHE_DEFAULT_INTERVAL_MS, CACHE_DEFAULT_MB};
