//! Scatter-gather batch I/O: many reads and writes submitted as one
//! unit through [`BlockDevice::submit`](crate::BlockDevice::submit).
//!
//! One-op-per-call `read_at`/`write_at` makes N small writes to the
//! same stripe pay N lock acquisitions, N codec passes, and (over a
//! wire) N round trips. A batch names all N ops up front, so a backend
//! can group them — per stripe for a local store (one lock, one
//! re-encode-vs-parity-delta decision), per shard for a sharded or
//! remote one (parallel execution, one request frame per shard).
//!
//! # Semantics
//!
//! * Results come back **per op, in submission order**
//!   ([`BatchResult::results`]), plus one aggregated [`WriteOutcome`].
//! * Backends may reorder and merge **disjoint** ops freely; ops whose
//!   byte ranges conflict (a write overlapping anything) must take
//!   effect as if executed one at a time in submission order.
//!   [`IoBatch::has_conflicts`] is the shared detector backends use to
//!   fall back to the sequential path.
//! * A batch is not atomic: the first failing op aborts the rest, and
//!   writes that already executed stay applied. Callers needing
//!   all-or-nothing run their own journal above the device.

use crate::WriteOutcome;

/// One operation in a batch: a read or a write of a byte span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IoOp {
    /// Read `len` bytes at byte `offset`.
    Read {
        /// Byte offset in the device's logical space.
        offset: u64,
        /// Bytes to read.
        len: usize,
    },
    /// Write `data` at byte `offset`.
    Write {
        /// Byte offset in the device's logical space.
        offset: u64,
        /// Bytes to store.
        data: Vec<u8>,
    },
}

impl IoOp {
    /// The op's starting byte offset.
    pub fn offset(&self) -> u64 {
        match self {
            IoOp::Read { offset, .. } | IoOp::Write { offset, .. } => *offset,
        }
    }

    /// Bytes the op touches.
    pub fn byte_len(&self) -> usize {
        match self {
            IoOp::Read { len, .. } => *len,
            IoOp::Write { data, .. } => data.len(),
        }
    }

    /// One byte past the op's span (`offset + byte_len`).
    pub fn end(&self) -> u64 {
        self.offset() + self.byte_len() as u64
    }

    /// `true` for writes.
    pub fn is_write(&self) -> bool {
        matches!(self, IoOp::Write { .. })
    }
}

/// An ordered list of [`IoOp`]s submitted as one unit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IoBatch {
    ops: Vec<IoOp>,
}

impl IoBatch {
    /// An empty batch.
    pub fn new() -> Self {
        IoBatch::default()
    }

    /// Appends a read of `len` bytes at `offset`.
    pub fn read(&mut self, offset: u64, len: usize) -> &mut Self {
        self.ops.push(IoOp::Read { offset, len });
        self
    }

    /// Appends a write of `data` at `offset`.
    pub fn write(&mut self, offset: u64, data: Vec<u8>) -> &mut Self {
        self.ops.push(IoOp::Write { offset, data });
        self
    }

    /// Appends an already-built op.
    pub fn push(&mut self, op: IoOp) {
        self.ops.push(op);
    }

    /// The ops, in submission order.
    pub fn ops(&self) -> &[IoOp] {
        &self.ops
    }

    /// Consumes the batch into its ops.
    pub fn into_ops(self) -> Vec<IoOp> {
        self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the batch holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// `true` when any two ops overlap and at least one of the pair is
    /// a write — the condition under which execution order is
    /// observable, so backends must fall back to submission order
    /// instead of regrouping. Overlapping reads are not conflicts.
    pub fn has_conflicts(&self) -> bool {
        // Sweep the spans in start order, tracking the furthest end seen
        // over all ops and over writes alone; a later-starting op
        // conflicts exactly when it begins before the relevant frontier.
        let mut spans: Vec<(u64, u64, bool)> = self
            .ops
            .iter()
            .filter(|op| op.byte_len() > 0)
            .map(|op| (op.offset(), op.end(), op.is_write()))
            .collect();
        spans.sort_unstable();
        let (mut any_end, mut write_end) = (0u64, 0u64);
        for (start, end, is_write) in spans {
            if start < write_end || (is_write && start < any_end) {
                return true;
            }
            any_end = any_end.max(end);
            if is_write {
                write_end = write_end.max(end);
            }
        }
        false
    }
}

impl From<Vec<IoOp>> for IoBatch {
    fn from(ops: Vec<IoOp>) -> Self {
        IoBatch { ops }
    }
}

impl FromIterator<IoOp> for IoBatch {
    fn from_iter<I: IntoIterator<Item = IoOp>>(iter: I) -> Self {
        IoBatch {
            ops: iter.into_iter().collect(),
        }
    }
}

/// The result of one batch op, same-index as its [`IoOp`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpResult {
    /// The bytes a read returned.
    Read(Vec<u8>),
    /// What a write did. When several batch writes share one store
    /// pass, the pass counters (`stripes_touched`,
    /// `full_stripe_encodes`) are attributed to the first write of the
    /// pass and the rest carry zeros (plus their own `bytes` /
    /// `blocks_written`), so summing per-op outcomes yields exact
    /// totals.
    Write(WriteOutcome),
}

/// Per-op results in submission order, plus the aggregated write
/// outcome across the whole batch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchResult {
    /// One entry per submitted op, in submission order.
    pub results: Vec<OpResult>,
    /// All write outcomes folded together.
    pub write: WriteOutcome,
}

impl BatchResult {
    /// Builds the result, computing the aggregate from the per-op
    /// write outcomes.
    pub fn from_results(results: Vec<OpResult>) -> Self {
        let mut write = WriteOutcome::default();
        for r in &results {
            if let OpResult::Write(w) = r {
                write.absorb(w);
            }
        }
        BatchResult { results, write }
    }
}

/// The zeroed per-op result slots a backend fills in while executing a
/// batch: reads get a zeroed buffer of their length, writes an empty
/// outcome. Every native `submit` implementation seeds with this, so
/// result slots and ops can never disagree on kind.
pub fn seed_results(ops: &[IoOp]) -> Vec<OpResult> {
    ops.iter()
        .map(|op| match op {
            IoOp::Read { len, .. } => OpResult::Read(vec![0u8; *len]),
            IoOp::Write { .. } => OpResult::Write(WriteOutcome::default()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_builder_keeps_submission_order() {
        let mut batch = IoBatch::new();
        batch.read(0, 4).write(8, vec![1, 2]).read(16, 1);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert_eq!(
            batch.ops()[1],
            IoOp::Write {
                offset: 8,
                data: vec![1, 2]
            }
        );
        assert_eq!(batch.ops()[0].byte_len(), 4);
        assert_eq!(batch.ops()[1].end(), 10);
        assert!(batch.ops()[1].is_write());
        assert!(!batch.ops()[2].is_write());
    }

    #[test]
    fn conflict_detection() {
        // Disjoint ops: no conflict.
        let mut batch = IoBatch::new();
        batch.write(0, vec![0; 4]).read(4, 4).write(8, vec![0; 4]);
        assert!(!batch.has_conflicts());

        // Overlapping reads: no conflict.
        let mut batch = IoBatch::new();
        batch.read(0, 8).read(4, 8);
        assert!(!batch.has_conflicts());

        // Write overlapping a read, either order: conflict.
        let mut batch = IoBatch::new();
        batch.read(0, 8).write(7, vec![0; 2]);
        assert!(batch.has_conflicts());
        let mut batch = IoBatch::new();
        batch.write(7, vec![0; 2]).read(0, 8);
        assert!(batch.has_conflicts());

        // Write overlapping a write: conflict.
        let mut batch = IoBatch::new();
        batch.write(0, vec![0; 4]).write(3, vec![0; 4]);
        assert!(batch.has_conflicts());

        // Zero-length ops never conflict.
        let mut batch = IoBatch::new();
        batch.write(0, vec![0; 4]).write(2, Vec::new()).read(2, 0);
        assert!(!batch.has_conflicts());

        // Adjacent (touching, not overlapping) spans: no conflict.
        let mut batch = IoBatch::new();
        batch.write(0, vec![0; 4]).write(4, vec![0; 4]);
        assert!(!batch.has_conflicts());
    }

    #[test]
    fn conflict_sweep_matches_pairwise_reference_at_4096_ops() {
        // The sweep must agree with the obvious O(n²) pairwise check on
        // a large adversarial batch: deterministic pseudo-random spans
        // (some zero-length, some overlapping, read/write mixed) over a
        // small offset range so collisions are common.
        let overlaps = |a: &IoOp, b: &IoOp| {
            a.byte_len() > 0 && b.byte_len() > 0 && a.offset() < b.end() && b.offset() < a.end()
        };
        let pairwise = |ops: &[IoOp]| {
            for (i, a) in ops.iter().enumerate() {
                for b in &ops[i + 1..] {
                    if overlaps(a, b) && (a.is_write() || b.is_write()) {
                        return true;
                    }
                }
            }
            false
        };

        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };

        // Dense case: 4096 ops crammed into a small range — almost
        // certainly conflicting, but verify against the reference
        // rather than assuming.
        let mut dense = IoBatch::new();
        for _ in 0..4096 {
            let offset = next() % (1 << 16);
            let len = (next() % 64) as usize;
            if next() % 2 == 0 {
                dense.read(offset, len);
            } else {
                dense.write(offset, vec![0u8; len]);
            }
        }
        assert_eq!(dense.has_conflicts(), pairwise(dense.ops()));

        // Sparse case: 4096 disjoint one-byte writes in shuffled order
        // must come back clean (the sweep sorts internally).
        let mut lanes: Vec<u64> = (0..4096u64).collect();
        for i in (1..lanes.len()).rev() {
            lanes.swap(i, (next() % (i as u64 + 1)) as usize);
        }
        let mut sparse = IoBatch::new();
        for lane in lanes {
            sparse.write(lane * 2, vec![0u8]);
        }
        assert_eq!(sparse.len(), 4096);
        assert!(!sparse.has_conflicts());
        assert!(!pairwise(sparse.ops()));

        // Flip exactly one lane onto a neighbour: now conflicting.
        let mut ops = sparse.into_ops();
        ops[77] = IoOp::Write {
            offset: ops[78].offset(),
            data: vec![0u8],
        };
        let bumped = IoBatch::from(ops);
        assert!(bumped.has_conflicts());
        assert!(pairwise(bumped.ops()));
    }

    #[test]
    fn batch_result_aggregates_write_outcomes() {
        let result = BatchResult::from_results(vec![
            OpResult::Read(vec![1, 2, 3]),
            OpResult::Write(WriteOutcome {
                bytes: 10,
                blocks_written: 1,
                stripes_touched: 1,
                full_stripe_encodes: 0,
                delta_updates: 1,
            }),
            OpResult::Write(WriteOutcome {
                bytes: 20,
                blocks_written: 2,
                stripes_touched: 0,
                full_stripe_encodes: 0,
                delta_updates: 2,
            }),
        ]);
        assert_eq!(
            result.write,
            WriteOutcome {
                bytes: 30,
                blocks_written: 3,
                stripes_touched: 1,
                full_stripe_encodes: 0,
                delta_updates: 3,
            }
        );
    }
}
