//! [`Instrumented`]: per-op metrics for any [`BlockDevice`].

use std::sync::Arc;
use std::time::Instant;

use stair_obs::trace::{self, names};
use stair_obs::{Counter, Histogram, MetricsRegistry, MetricsSnapshot};

use crate::{
    BatchResult, BlockDevice, DeviceError, DeviceStatus, FaultAdmin, IoBatch, IoOp, RepairOutcome,
    ScrubOutcome, WriteOutcome,
};

/// Handles for one op kind, registered once at construction so the hot
/// path never touches the registry lock.
struct OpMeter {
    ops: Counter,
    errors: Counter,
    lat_us: Histogram,
}

impl OpMeter {
    fn new(registry: &MetricsRegistry, kind: &str) -> Self {
        OpMeter {
            ops: registry.counter(&format!("dev.ops.{kind}")),
            errors: registry.counter(&format!("dev.errors.{kind}")),
            lat_us: registry.histogram(&format!("dev.lat_us.{kind}")),
        }
    }
}

/// Wraps any [`BlockDevice`] and records per-op and per-batch metrics
/// into its own [`MetricsRegistry`]: counters (`dev.ops.<kind>`,
/// `dev.errors.<kind>`, `dev.bytes.read`, `dev.bytes.written`), log₂
/// latency histograms (`dev.lat_us.<kind>`), and journal events with
/// slow-op capture. `<kind>` is one of `read`, `write`, `batch`,
/// `flush`, `scrub`, `repair`.
///
/// [`metrics`](BlockDevice::metrics) returns the wrapper's registry
/// merged with whatever the inner backend reports, so one call yields
/// the whole stack's view.
pub struct Instrumented<D: BlockDevice> {
    inner: D,
    registry: Arc<MetricsRegistry>,
    read: OpMeter,
    write: OpMeter,
    batch: OpMeter,
    flush: OpMeter,
    scrub: OpMeter,
    repair: OpMeter,
    bytes_read: Counter,
    bytes_written: Counter,
}

impl<D: BlockDevice> Instrumented<D> {
    /// Wraps `inner` with a fresh registry.
    pub fn new(inner: D) -> Self {
        Self::with_registry(inner, Arc::new(MetricsRegistry::new()))
    }

    /// Wraps `inner`, recording into a caller-provided registry (shared
    /// with other wrappers or the surrounding process).
    pub fn with_registry(inner: D, registry: Arc<MetricsRegistry>) -> Self {
        Instrumented {
            read: OpMeter::new(&registry, "read"),
            write: OpMeter::new(&registry, "write"),
            batch: OpMeter::new(&registry, "batch"),
            flush: OpMeter::new(&registry, "flush"),
            scrub: OpMeter::new(&registry, "scrub"),
            repair: OpMeter::new(&registry, "repair"),
            bytes_read: registry.counter("dev.bytes.read"),
            bytes_written: registry.counter("dev.bytes.written"),
            inner,
            registry,
        }
    }

    /// The wrapper's registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Unwraps, dropping the instrumentation.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Times `f`, charging one op (and on failure one error) to
    /// `meter`, `bytes` moved to `bytes_counter`, and a journal event
    /// of `kind`. `span_name` opens a trace span over the op — a child
    /// of the caller's span, or a fresh root when tracing is enabled
    /// and this wrapper is the outermost traced layer.
    fn observe<T>(
        &self,
        meter: &OpMeter,
        kind: &str,
        span_name: &'static str,
        f: impl FnOnce() -> Result<T, DeviceError>,
        bytes_of: impl FnOnce(&Result<T, DeviceError>) -> u64,
    ) -> Result<T, DeviceError> {
        let mut span = trace::span_or_root(span_name);
        let t0 = Instant::now();
        let result = f();
        let elapsed = t0.elapsed();
        let bytes = bytes_of(&result);
        span.set_bytes(bytes);
        if result.is_err() {
            span.fail();
        }
        meter.ops.inc();
        meter.lat_us.record(elapsed.as_micros() as u64);
        if result.is_err() {
            meter.errors.inc();
        }
        self.registry
            .record_op(kind, 0, bytes, elapsed, result.is_ok());
        result
    }
}

impl<D: BlockDevice> BlockDevice for Instrumented<D> {
    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, DeviceError> {
        let result = self.observe(
            &self.read,
            "read",
            names::DEV_READ,
            || self.inner.read_at(offset, len),
            |r| r.as_ref().map(|d| d.len() as u64).unwrap_or(0),
        );
        if let Ok(data) = &result {
            self.bytes_read.add(data.len() as u64);
        }
        result
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<WriteOutcome, DeviceError> {
        let result = self.observe(
            &self.write,
            "write",
            names::DEV_WRITE,
            || self.inner.write_at(offset, data),
            |_| data.len() as u64,
        );
        if result.is_ok() {
            self.bytes_written.add(data.len() as u64);
        }
        result
    }

    fn submit(&self, batch: &IoBatch) -> Result<BatchResult, DeviceError> {
        let (mut read_bytes, mut write_bytes) = (0u64, 0u64);
        for op in batch.ops() {
            match op {
                IoOp::Read { len, .. } => read_bytes += *len as u64,
                IoOp::Write { data, .. } => write_bytes += data.len() as u64,
            }
        }
        let result = self.observe(
            &self.batch,
            "batch",
            names::DEV_BATCH,
            || self.inner.submit(batch),
            |_| read_bytes + write_bytes,
        );
        if result.is_ok() {
            self.bytes_read.add(read_bytes);
            self.bytes_written.add(write_bytes);
        }
        result
    }

    fn flush(&self) -> Result<(), DeviceError> {
        self.observe(
            &self.flush,
            "flush",
            names::DEV_FLUSH,
            || self.inner.flush(),
            |_| 0,
        )
    }

    fn status(&self) -> Result<DeviceStatus, DeviceError> {
        self.inner.status()
    }

    fn scrub(&self, threads: usize) -> Result<ScrubOutcome, DeviceError> {
        self.observe(
            &self.scrub,
            "scrub",
            names::DEV_SCRUB,
            || self.inner.scrub(threads),
            |_| 0,
        )
    }

    fn repair(&self, threads: usize) -> Result<RepairOutcome, DeviceError> {
        self.observe(
            &self.repair,
            "repair",
            names::DEV_REPAIR,
            || self.inner.repair(threads),
            |_| 0,
        )
    }

    fn metrics(&self) -> Result<MetricsSnapshot, DeviceError> {
        let mut snap = self.registry.snapshot();
        snap.merge(&self.inner.metrics()?);
        Ok(snap)
    }
}

/// Fault administration passes straight through (fault injection is not
/// a data-path op; it stays uncounted).
impl<D: BlockDevice + FaultAdmin> FaultAdmin for Instrumented<D> {
    fn fail_device(&self, shard: usize, device: usize) -> Result<(), DeviceError> {
        self.inner.fail_device(shard, device)
    }

    fn corrupt_sectors(
        &self,
        shard: usize,
        device: usize,
        stripe: usize,
        row: usize,
        len: usize,
    ) -> Result<(), DeviceError> {
        self.inner.corrupt_sectors(shard, device, stripe, row, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny in-memory device for exercising the wrapper.
    struct MemDevice {
        data: std::sync::Mutex<Vec<u8>>,
    }

    impl MemDevice {
        fn new(len: usize) -> Self {
            MemDevice {
                data: std::sync::Mutex::new(vec![0; len]),
            }
        }
    }

    impl BlockDevice for MemDevice {
        fn capacity(&self) -> u64 {
            self.data.lock().unwrap().len() as u64
        }

        fn block_size(&self) -> usize {
            16
        }

        fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, DeviceError> {
            let data = self.data.lock().unwrap();
            let start = offset as usize;
            let end = start.checked_add(len).filter(|&e| e <= data.len());
            match end {
                Some(end) => Ok(data[start..end].to_vec()),
                None => Err(DeviceError::OutOfRange("read past end".into())),
            }
        }

        fn write_at(&self, offset: u64, bytes: &[u8]) -> Result<WriteOutcome, DeviceError> {
            let mut data = self.data.lock().unwrap();
            let start = offset as usize;
            let end = start
                .checked_add(bytes.len())
                .filter(|&e| e <= data.len())
                .ok_or_else(|| DeviceError::OutOfRange("write past end".into()))?;
            data[start..end].copy_from_slice(bytes);
            Ok(WriteOutcome {
                bytes: bytes.len() as u64,
                ..WriteOutcome::default()
            })
        }

        fn flush(&self) -> Result<(), DeviceError> {
            Ok(())
        }

        fn status(&self) -> Result<DeviceStatus, DeviceError> {
            Ok(DeviceStatus {
                backend: "mem".into(),
                capacity: self.capacity(),
                block_size: 16,
                shards: Vec::new(),
                cache: None,
            })
        }

        fn scrub(&self, _threads: usize) -> Result<ScrubOutcome, DeviceError> {
            Ok(ScrubOutcome::default())
        }

        fn repair(&self, _threads: usize) -> Result<RepairOutcome, DeviceError> {
            Ok(RepairOutcome::default())
        }
    }

    #[test]
    fn counts_ops_bytes_and_latency_per_kind() {
        let dev = Instrumented::new(MemDevice::new(256));
        dev.write_at(0, &[7u8; 64]).unwrap();
        dev.read_at(0, 32).unwrap();
        dev.read_at(32, 32).unwrap();
        dev.flush().unwrap();
        assert!(dev.read_at(250, 100).is_err());

        let snap = dev.metrics().unwrap();
        assert_eq!(snap.counter("dev.ops.read"), Some(3));
        assert_eq!(snap.counter("dev.ops.write"), Some(1));
        assert_eq!(snap.counter("dev.ops.flush"), Some(1));
        assert_eq!(snap.counter("dev.errors.read"), Some(1));
        assert_eq!(snap.counter("dev.bytes.read"), Some(64));
        assert_eq!(snap.counter("dev.bytes.written"), Some(64));
        let lat = snap.histogram("dev.lat_us.read").unwrap();
        assert_eq!(lat.count(), 3);
        assert!(lat.p50() <= lat.p99());
    }

    #[test]
    fn batches_count_once_with_combined_bytes() {
        let dev = Instrumented::new(MemDevice::new(256));
        let mut batch = IoBatch::new();
        batch.write(0, vec![1u8; 48]).read(0, 16);
        let result = dev.submit(&batch).unwrap();
        assert_eq!(result.results.len(), 2);

        let snap = dev.metrics().unwrap();
        assert_eq!(snap.counter("dev.ops.batch"), Some(1));
        assert_eq!(snap.counter("dev.bytes.written"), Some(48));
        assert_eq!(snap.counter("dev.bytes.read"), Some(16));
        assert_eq!(snap.histogram("dev.lat_us.batch").unwrap().count(), 1);
    }

    #[test]
    fn slow_op_capture_retains_context() {
        let dev = Instrumented::new(MemDevice::new(64));
        dev.registry().journal().set_slow_threshold_us(0);
        dev.write_at(0, &[9u8; 10]).unwrap();
        let snap = dev.metrics().unwrap();
        assert!(!snap.slow_ops.is_empty());
        let op = &snap.slow_ops[0];
        assert_eq!(op.kind, "write");
        assert_eq!(op.bytes, 10);
        assert!(op.ok);
    }

    #[test]
    fn boxed_devices_are_wrappable() {
        let boxed: Box<dyn BlockDevice> = Box::new(MemDevice::new(128));
        let dev = Instrumented::new(boxed);
        dev.read_at(0, 8).unwrap();
        assert_eq!(dev.capacity(), 128);
        assert_eq!(dev.metrics().unwrap().counter("dev.ops.read"), Some(1));
    }
}
