//! The object-safe storage traits.

use stair_obs::MetricsSnapshot;

use crate::{
    BatchResult, DeviceError, DeviceStatus, IoBatch, IoOp, OpResult, RepairOutcome, ScrubOutcome,
    WriteOutcome,
};

/// The unified data-path API over any storage backend — a local stripe
/// store, an in-process shard set, or a remote TCP client.
///
/// Every method takes `&self`: backends with inherently mutable state
/// (e.g. a network connection) hide it behind interior mutability, so
/// any implementation works behind `Arc<dyn BlockDevice>` from many
/// threads at once. The trait is object-safe by construction; the
/// `open_device()` registry in `stair-net` hands out
/// `Box<dyn BlockDevice>` from a [`DeviceSpec`](crate::DeviceSpec).
pub trait BlockDevice: Send + Sync {
    /// Total logical capacity in bytes.
    fn capacity(&self) -> u64;

    /// Logical block size in bytes.
    fn block_size(&self) -> usize;

    /// Reads `len` bytes at byte `offset`. Degraded backends
    /// reconstruct transparently; the returned bytes are always
    /// verified (checksums locally, frame checksums over the wire).
    ///
    /// # Errors
    ///
    /// Out-of-range spans, damage beyond coverage, and backend
    /// failures.
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, DeviceError>;

    /// Writes `data` at byte `offset`, returning the aggregated
    /// [`WriteOutcome`].
    ///
    /// # Errors
    ///
    /// Out-of-range spans and backend failures.
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<WriteOutcome, DeviceError>;

    /// Submits a scatter-gather batch, returning per-op results in
    /// submission order plus the aggregated write outcome.
    ///
    /// The default implementation loops over `read_at`/`write_at`, so
    /// every existing implementor stays source-compatible. Native
    /// backends override it to amortize work across ops: a stripe
    /// store takes each stripe lock once with one
    /// re-encode-vs-parity-delta decision per touched stripe, a shard
    /// set splits by placement and runs shards in parallel, a remote
    /// client ships the whole batch in one request frame per shard.
    /// Overlap semantics and failure behavior are specified on
    /// [`IoBatch`].
    ///
    /// # Errors
    ///
    /// The first failing op aborts the batch; writes that already
    /// executed stay applied.
    fn submit(&self, batch: &IoBatch) -> Result<BatchResult, DeviceError> {
        let mut results = Vec::with_capacity(batch.len());
        for op in batch.ops() {
            results.push(match op {
                IoOp::Read { offset, len } => OpResult::Read(self.read_at(*offset, *len)?),
                IoOp::Write { offset, data } => OpResult::Write(self.write_at(*offset, data)?),
            });
        }
        Ok(BatchResult::from_results(results))
    }

    /// Persists all state (data, checksums, health records).
    ///
    /// # Errors
    ///
    /// Backend failures.
    fn flush(&self) -> Result<(), DeviceError>;

    /// Health snapshot of every shard behind this device.
    ///
    /// # Errors
    ///
    /// Backend failures (a remote status call can fail; local ones do
    /// not).
    fn status(&self) -> Result<DeviceStatus, DeviceError>;

    /// Verifies every sector checksum with `threads` workers per shard.
    ///
    /// # Errors
    ///
    /// Backend failures (mismatches are reported in the outcome, not as
    /// errors).
    fn scrub(&self, threads: usize) -> Result<ScrubOutcome, DeviceError>;

    /// Rebuilds failed devices and damaged sectors online with
    /// `threads` workers per shard.
    ///
    /// # Errors
    ///
    /// Backend failures (unrecoverable stripes are reported in the
    /// outcome, not as errors).
    fn repair(&self, threads: usize) -> Result<RepairOutcome, DeviceError>;

    /// A metrics snapshot for this backend: operation counters, latency
    /// histograms, progress gauges, and captured slow ops.
    ///
    /// The default returns an empty snapshot, so implementors without
    /// native instrumentation stay source-compatible. Backends with
    /// their own registries override it (a stripe store folds in its
    /// `IoStats` and the GF kernel counters; a remote client pulls the
    /// server's registry over the wire); the
    /// [`Instrumented`](crate::Instrumented) wrapper adds per-op
    /// latency/byte accounting in front of any of them.
    ///
    /// # Errors
    ///
    /// Backend failures (a remote snapshot call can fail; local ones do
    /// not).
    fn metrics(&self) -> Result<MetricsSnapshot, DeviceError> {
        Ok(MetricsSnapshot::default())
    }
}

/// Forwarding impl so a boxed device is itself a device — what lets
/// wrappers like [`Instrumented`](crate::Instrumented) sit in front of
/// whatever `open_device()` returned. Every method forwards (including
/// the ones with default bodies, so a backend's native `submit` and
/// `metrics` are never shadowed by the trait defaults).
impl BlockDevice for Box<dyn BlockDevice> {
    fn capacity(&self) -> u64 {
        (**self).capacity()
    }

    fn block_size(&self) -> usize {
        (**self).block_size()
    }

    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, DeviceError> {
        (**self).read_at(offset, len)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<WriteOutcome, DeviceError> {
        (**self).write_at(offset, data)
    }

    fn submit(&self, batch: &IoBatch) -> Result<BatchResult, DeviceError> {
        (**self).submit(batch)
    }

    fn flush(&self) -> Result<(), DeviceError> {
        (**self).flush()
    }

    fn status(&self) -> Result<DeviceStatus, DeviceError> {
        (**self).status()
    }

    fn scrub(&self, threads: usize) -> Result<ScrubOutcome, DeviceError> {
        (**self).scrub(threads)
    }

    fn repair(&self, threads: usize) -> Result<RepairOutcome, DeviceError> {
        (**self).repair(threads)
    }

    fn metrics(&self) -> Result<MetricsSnapshot, DeviceError> {
        (**self).metrics()
    }
}

/// Forwarding impl so a boxed **admin** device is itself a device —
/// what lets generic wrappers (e.g. a cache tier) sit in front of
/// whatever `open_admin()` returned while keeping the fault verbs
/// reachable. Paired with the [`FaultAdmin`] forwarding impl below,
/// the blanket [`AdminDevice`] impl then covers
/// `Box<dyn AdminDevice>` too.
impl BlockDevice for Box<dyn AdminDevice> {
    fn capacity(&self) -> u64 {
        (**self).capacity()
    }

    fn block_size(&self) -> usize {
        (**self).block_size()
    }

    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, DeviceError> {
        (**self).read_at(offset, len)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<WriteOutcome, DeviceError> {
        (**self).write_at(offset, data)
    }

    fn submit(&self, batch: &IoBatch) -> Result<BatchResult, DeviceError> {
        (**self).submit(batch)
    }

    fn flush(&self) -> Result<(), DeviceError> {
        (**self).flush()
    }

    fn status(&self) -> Result<DeviceStatus, DeviceError> {
        (**self).status()
    }

    fn scrub(&self, threads: usize) -> Result<ScrubOutcome, DeviceError> {
        (**self).scrub(threads)
    }

    fn repair(&self, threads: usize) -> Result<RepairOutcome, DeviceError> {
        (**self).repair(threads)
    }

    fn metrics(&self) -> Result<MetricsSnapshot, DeviceError> {
        (**self).metrics()
    }
}

/// Fault administration, split from [`BlockDevice`] because not every
/// deployment exposes it — a production remote endpoint may refuse
/// these with [`DeviceError::Unsupported`] while still serving the full
/// data path.
pub trait FaultAdmin {
    /// Declares `device` of `shard` failed (whole backing file lost).
    /// Single-store backends only have `shard` 0.
    ///
    /// # Errors
    ///
    /// Unknown shard/device indices, unsupported backends.
    fn fail_device(&self, shard: usize, device: usize) -> Result<(), DeviceError>;

    /// Corrupts `len` consecutive sectors of one chunk (latent damage:
    /// detected only by a later read or scrub).
    ///
    /// # Errors
    ///
    /// Unknown indices, unsupported backends.
    fn corrupt_sectors(
        &self,
        shard: usize,
        device: usize,
        stripe: usize,
        row: usize,
        len: usize,
    ) -> Result<(), DeviceError>;
}

/// Forwarding impl paired with the `BlockDevice` one above.
impl FaultAdmin for Box<dyn AdminDevice> {
    fn fail_device(&self, shard: usize, device: usize) -> Result<(), DeviceError> {
        (**self).fail_device(shard, device)
    }

    fn corrupt_sectors(
        &self,
        shard: usize,
        device: usize,
        stripe: usize,
        row: usize,
        len: usize,
    ) -> Result<(), DeviceError> {
        (**self).corrupt_sectors(shard, device, stripe, row, len)
    }
}

/// A device that also accepts fault administration — what the CLI's
/// `fail` verb and the conformance harness open.
pub trait AdminDevice: BlockDevice + FaultAdmin {}

impl<T: BlockDevice + FaultAdmin> AdminDevice for T {}
