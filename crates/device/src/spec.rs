//! The device spec grammar: one-line, URI-style backend descriptors.

use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;

use crate::DeviceError;

/// A parsed device descriptor naming a storage backend.
///
/// The grammar (scheme, a target, then optional `?key=value` query
/// parameters — no spaces, so specs embed in CLI flags and scripts):
///
/// ```text
/// file:<dir>              a single local stripe store
/// shards:<root>[?n=<k>]   a sharded set under <root> (n asserts the count)
/// tcp:<host:port>[?lanes=<l>]   a remote server (lanes > 1 stripes the
///                               transfer over that many connections)
/// cache:<inner>[?mb=<m>&wb=on|off&interval_ms=<t>]
///                         a tiered cache in front of any inner spec
/// ```
///
/// `cache:` wraps another spec; its own keys (`mb` — read budget in
/// MiB, `wb` — write-back on/off, `interval_ms` — group-commit
/// interval) and the inner spec's keys share one query string, split
/// by key (so `cache:tcp:h:p?lanes=2&mb=8` gives the lanes to `tcp:`
/// and the budget to the cache). Nested `cache:` specs are rejected.
///
/// # Example
///
/// ```
/// use stair_device::DeviceSpec;
///
/// let spec: DeviceSpec = "shards:/srv/stair?n=4".parse()?;
/// assert_eq!(spec.to_string(), "shards:/srv/stair?n=4");
/// assert_eq!(spec.scheme(), "shards");
/// assert_eq!("tcp:10.0.0.1:7070?lanes=4".parse::<DeviceSpec>()?.scheme(), "tcp");
/// # Ok::<(), stair_device::DeviceError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceSpec {
    /// A single local stripe store at `dir`.
    File {
        /// Store directory.
        dir: PathBuf,
    },
    /// A sharded set of stripe stores under `root`.
    Shards {
        /// Root directory holding `shard-NNNN` subdirectories.
        root: PathBuf,
        /// Expected shard count; opening fails if the on-disk count
        /// disagrees. `None` accepts whatever is there.
        shards: Option<usize>,
    },
    /// A remote stair-net server.
    Tcp {
        /// `host:port` of the server.
        addr: String,
        /// Connections to stripe transfers over (≥ 1).
        lanes: usize,
    },
    /// A tiered cache (block-granular CLOCK read tier plus an optional
    /// write-back tier) in front of another backend.
    Cache {
        /// The backend being fronted (never itself `Cache`).
        inner: Box<DeviceSpec>,
        /// Read-tier budget in MiB (≥ 1).
        mb: usize,
        /// Write-back tier enabled (`wb=on`); the default is
        /// write-through — the safe choice, especially over `tcp:`.
        wb: bool,
        /// Group-commit interval in milliseconds for the write-back
        /// drain thread; 0 disables the timer (drains happen only on
        /// pressure or `flush()`).
        interval_ms: u64,
    },
}

/// Default read-tier budget in MiB for `cache:` specs.
pub const CACHE_DEFAULT_MB: usize = 64;
/// Default group-commit interval in milliseconds for `cache:` specs.
pub const CACHE_DEFAULT_INTERVAL_MS: u64 = 50;

impl DeviceSpec {
    /// The scheme name (`"file"`, `"shards"`, `"tcp"`, or `"cache"`).
    pub fn scheme(&self) -> &'static str {
        match self {
            DeviceSpec::File { .. } => "file",
            DeviceSpec::Shards { .. } => "shards",
            DeviceSpec::Tcp { .. } => "tcp",
            DeviceSpec::Cache { .. } => "cache",
        }
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceSpec::File { dir } => write!(f, "file:{}", dir.display()),
            DeviceSpec::Shards { root, shards } => {
                write!(f, "shards:{}", root.display())?;
                if let Some(n) = shards {
                    write!(f, "?n={n}")?;
                }
                Ok(())
            }
            DeviceSpec::Tcp { addr, lanes } => {
                write!(f, "tcp:{addr}")?;
                if *lanes > 1 {
                    write!(f, "?lanes={lanes}")?;
                }
                Ok(())
            }
            DeviceSpec::Cache {
                inner,
                mb,
                wb,
                interval_ms,
            } => {
                // The inner spec renders first (with its own query, if
                // any); cache keys append to the shared query string.
                let rendered = inner.to_string();
                let mut sep = if rendered.contains('?') { '&' } else { '?' };
                write!(f, "cache:{rendered}")?;
                let mut kv = |f: &mut fmt::Formatter<'_>, key: &str, val: String| {
                    let r = write!(f, "{sep}{key}={val}");
                    sep = '&';
                    r
                };
                if *mb != CACHE_DEFAULT_MB {
                    kv(f, "mb", mb.to_string())?;
                }
                if *wb {
                    kv(f, "wb", "on".into())?;
                }
                if *interval_ms != CACHE_DEFAULT_INTERVAL_MS {
                    kv(f, "interval_ms", interval_ms.to_string())?;
                }
                Ok(())
            }
        }
    }
}

/// A spec's target and its parsed `?key=value` query parameters.
type TargetAndQuery<'a> = (&'a str, Vec<(&'a str, &'a str)>);

/// Splits `target[?query]` and parses the query into `(key, value)`
/// pairs, rejecting malformed ones.
fn split_query<'a>(
    rest: &'a str,
    bad: &impl Fn(&str) -> DeviceError,
) -> Result<TargetAndQuery<'a>, DeviceError> {
    let Some((target, query)) = rest.split_once('?') else {
        return Ok((rest, Vec::new()));
    };
    let mut params = Vec::new();
    for pair in query.split('&') {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| bad(&format!("query parameter `{pair}` is not key=value")))?;
        if key.is_empty() || value.is_empty() {
            return Err(bad(&format!("query parameter `{pair}` is incomplete")));
        }
        params.push((key, value));
    }
    Ok((target, params))
}

impl FromStr for DeviceSpec {
    type Err = DeviceError;

    fn from_str(text: &str) -> Result<Self, DeviceError> {
        let bad = |msg: &str| DeviceError::Spec(format!("device spec `{text}`: {msg}"));
        let (scheme, rest) = text
            .split_once(':')
            .ok_or_else(|| bad("expected `scheme:target` (file:, shards:, tcp:, or cache:)"))?;
        let int = |key: &str, v: &str| {
            v.parse::<usize>()
                .map_err(|_| bad(&format!("{key} expects an integer, got `{v}`")))
        };
        match scheme {
            "file" => {
                let (dir, params) = split_query(rest, &bad)?;
                if let Some((key, _)) = params.first() {
                    return Err(bad(&format!("file takes no query parameters (got {key})")));
                }
                if dir.is_empty() {
                    return Err(bad("file expects a directory, e.g. file:/srv/store"));
                }
                Ok(DeviceSpec::File {
                    dir: PathBuf::from(dir),
                })
            }
            "shards" => {
                let (root, params) = split_query(rest, &bad)?;
                if root.is_empty() {
                    return Err(bad("shards expects a root directory"));
                }
                let mut shards = None;
                for (key, value) in params {
                    match key {
                        "n" if shards.is_none() => {
                            let n = int("n", value)?;
                            if n == 0 {
                                return Err(bad("n must be at least 1"));
                            }
                            shards = Some(n);
                        }
                        "n" => return Err(bad("duplicate query parameter n")),
                        other => return Err(bad(&format!("unknown query parameter `{other}`"))),
                    }
                }
                Ok(DeviceSpec::Shards {
                    root: PathBuf::from(root),
                    shards,
                })
            }
            "tcp" => {
                let (addr, params) = split_query(rest, &bad)?;
                if addr.is_empty() {
                    return Err(bad("tcp expects host:port, e.g. tcp:127.0.0.1:7070"));
                }
                let mut lanes = 1;
                let mut seen = false;
                for (key, value) in params {
                    match key {
                        "lanes" if !seen => {
                            lanes = int("lanes", value)?;
                            if lanes == 0 {
                                return Err(bad("lanes must be at least 1"));
                            }
                            seen = true;
                        }
                        "lanes" => return Err(bad("duplicate query parameter lanes")),
                        other => return Err(bad(&format!("unknown query parameter `{other}`"))),
                    }
                }
                Ok(DeviceSpec::Tcp {
                    addr: addr.to_string(),
                    lanes,
                })
            }
            "cache" => {
                // Cache keys and inner-spec keys share one query
                // string; split by key, then hand the rest back to the
                // inner parse so `cache:tcp:h:p?lanes=2&mb=8` works.
                let (target, params) = split_query(rest, &bad)?;
                if target.is_empty() {
                    return Err(bad(
                        "cache expects an inner spec, e.g. cache:file:/srv/store",
                    ));
                }
                let mut mb = CACHE_DEFAULT_MB;
                let mut wb = false;
                let mut interval_ms = CACHE_DEFAULT_INTERVAL_MS;
                let (mut seen_mb, mut seen_wb, mut seen_iv) = (false, false, false);
                let mut inner_params: Vec<(&str, &str)> = Vec::new();
                for (key, value) in params {
                    match key {
                        "mb" if !seen_mb => {
                            mb = int("mb", value)?;
                            if mb == 0 {
                                return Err(bad("mb must be at least 1"));
                            }
                            seen_mb = true;
                        }
                        "wb" if !seen_wb => {
                            wb = match value {
                                "on" => true,
                                "off" => false,
                                other => {
                                    return Err(bad(&format!(
                                        "wb expects on or off, got `{other}`"
                                    )))
                                }
                            };
                            seen_wb = true;
                        }
                        "interval_ms" if !seen_iv => {
                            interval_ms = int("interval_ms", value)? as u64;
                            seen_iv = true;
                        }
                        "mb" | "wb" | "interval_ms" => {
                            return Err(bad(&format!("duplicate query parameter {key}")))
                        }
                        _ => inner_params.push((key, value)),
                    }
                }
                let mut inner_text = target.to_string();
                for (i, (key, value)) in inner_params.iter().enumerate() {
                    inner_text.push(if i == 0 { '?' } else { '&' });
                    inner_text.push_str(key);
                    inner_text.push('=');
                    inner_text.push_str(value);
                }
                let inner: DeviceSpec = inner_text.parse()?;
                if matches!(inner, DeviceSpec::Cache { .. }) {
                    return Err(bad("cache specs do not nest"));
                }
                Ok(DeviceSpec::Cache {
                    inner: Box::new(inner),
                    mb,
                    wb,
                    interval_ms,
                })
            }
            other => Err(bad(&format!(
                "unknown scheme `{other}` (expected file, shards, tcp, or cache)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for text in [
            "file:/srv/store",
            "file:relative/dir",
            "shards:/srv/stair",
            "shards:/srv/stair?n=4",
            "tcp:127.0.0.1:7070",
            "tcp:127.0.0.1:7070?lanes=4",
            "tcp:example.net:9",
            "cache:file:/srv/store",
            "cache:file:/srv/store?mb=8",
            "cache:shards:/srv/stair?n=4&mb=8",
            "cache:tcp:127.0.0.1:7070?lanes=2&mb=8&wb=on&interval_ms=25",
            "cache:tcp:h:1?wb=on",
        ] {
            let spec: DeviceSpec = text.parse().unwrap();
            assert_eq!(spec.to_string(), text, "round trip of `{text}`");
        }
    }

    #[test]
    fn parses_to_expected_variants() {
        assert_eq!(
            "file:/a/b".parse::<DeviceSpec>().unwrap(),
            DeviceSpec::File {
                dir: PathBuf::from("/a/b")
            }
        );
        assert_eq!(
            "shards:/root?n=3".parse::<DeviceSpec>().unwrap(),
            DeviceSpec::Shards {
                root: PathBuf::from("/root"),
                shards: Some(3)
            }
        );
        // tcp addr keeps its own colon; lanes defaults to 1.
        assert_eq!(
            "tcp:10.1.2.3:7070".parse::<DeviceSpec>().unwrap(),
            DeviceSpec::Tcp {
                addr: "10.1.2.3:7070".into(),
                lanes: 1
            }
        );
        // cache splits its shared query string by key: lanes goes to
        // the inner tcp spec, mb/wb/interval_ms stay with the cache.
        assert_eq!(
            "cache:tcp:h:1?lanes=2&mb=8&wb=on&interval_ms=25"
                .parse::<DeviceSpec>()
                .unwrap(),
            DeviceSpec::Cache {
                inner: Box::new(DeviceSpec::Tcp {
                    addr: "h:1".into(),
                    lanes: 2
                }),
                mb: 8,
                wb: true,
                interval_ms: 25,
            }
        );
        assert_eq!(
            "cache:file:/a/b".parse::<DeviceSpec>().unwrap(),
            DeviceSpec::Cache {
                inner: Box::new(DeviceSpec::File {
                    dir: PathBuf::from("/a/b")
                }),
                mb: CACHE_DEFAULT_MB,
                wb: false,
                interval_ms: CACHE_DEFAULT_INTERVAL_MS,
            }
        );
    }

    #[test]
    fn cache_defaults_render_bare() {
        let spec: DeviceSpec = "cache:file:/x?mb=64&wb=off&interval_ms=50".parse().unwrap();
        assert_eq!(spec.to_string(), "cache:file:/x");
        // Inner query params survive even when cache keys are default.
        let spec: DeviceSpec = "cache:shards:/x?n=2&mb=64".parse().unwrap();
        assert_eq!(spec.to_string(), "cache:shards:/x?n=2");
    }

    #[test]
    fn lanes_of_one_renders_bare() {
        let spec: DeviceSpec = "tcp:h:1?lanes=1".parse().unwrap();
        assert_eq!(spec.to_string(), "tcp:h:1");
    }

    #[test]
    fn bad_schemes_are_rejected() {
        for text in ["", "justapath", "nfs:/x", "FILE:/x", "file", "tcp"] {
            assert!(
                text.parse::<DeviceSpec>().is_err(),
                "`{text}` should not parse"
            );
        }
    }

    #[test]
    fn bad_targets_and_query_params_are_rejected() {
        for text in [
            "file:",
            "file:/x?n=2",
            "shards:",
            "shards:/x?n=",
            "shards:/x?n=zero",
            "shards:/x?n=0",
            "shards:/x?n=2&n=3",
            "shards:/x?k=2",
            "shards:/x?n",
            "tcp:",
            "tcp:h:1?lanes=0",
            "tcp:h:1?lanes=a",
            "tcp:h:1?lanes=2&lanes=3",
            "tcp:h:1?window=8",
            "cache:",
            "cache:file:/x?mb=0",
            "cache:file:/x?mb=big",
            "cache:file:/x?wb=maybe",
            "cache:file:/x?mb=8&mb=9",
            "cache:file:/x?wb=on&wb=off",
            "cache:file:/x?interval_ms=1&interval_ms=2",
            "cache:file:/x?bogus=1",
            "cache:cache:file:/x",
            "cache:nfs:/x",
        ] {
            let err = text.parse::<DeviceSpec>().unwrap_err();
            assert!(
                matches!(err, DeviceError::Spec(_)),
                "`{text}` should fail as a spec error, got {err:?}"
            );
        }
    }
}
