//! The device spec grammar: one-line, URI-style backend descriptors.

use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;

use crate::DeviceError;

/// A parsed device descriptor naming a storage backend.
///
/// The grammar (scheme, a target, then optional `?key=value` query
/// parameters — no spaces, so specs embed in CLI flags and scripts):
///
/// ```text
/// file:<dir>              a single local stripe store
/// shards:<root>[?n=<k>]   a sharded set under <root> (n asserts the count)
/// tcp:<host:port>[?lanes=<l>]   a remote server (lanes > 1 stripes the
///                               transfer over that many connections)
/// ```
///
/// # Example
///
/// ```
/// use stair_device::DeviceSpec;
///
/// let spec: DeviceSpec = "shards:/srv/stair?n=4".parse()?;
/// assert_eq!(spec.to_string(), "shards:/srv/stair?n=4");
/// assert_eq!(spec.scheme(), "shards");
/// assert_eq!("tcp:10.0.0.1:7070?lanes=4".parse::<DeviceSpec>()?.scheme(), "tcp");
/// # Ok::<(), stair_device::DeviceError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceSpec {
    /// A single local stripe store at `dir`.
    File {
        /// Store directory.
        dir: PathBuf,
    },
    /// A sharded set of stripe stores under `root`.
    Shards {
        /// Root directory holding `shard-NNNN` subdirectories.
        root: PathBuf,
        /// Expected shard count; opening fails if the on-disk count
        /// disagrees. `None` accepts whatever is there.
        shards: Option<usize>,
    },
    /// A remote stair-net server.
    Tcp {
        /// `host:port` of the server.
        addr: String,
        /// Connections to stripe transfers over (≥ 1).
        lanes: usize,
    },
}

impl DeviceSpec {
    /// The scheme name (`"file"`, `"shards"`, or `"tcp"`).
    pub fn scheme(&self) -> &'static str {
        match self {
            DeviceSpec::File { .. } => "file",
            DeviceSpec::Shards { .. } => "shards",
            DeviceSpec::Tcp { .. } => "tcp",
        }
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceSpec::File { dir } => write!(f, "file:{}", dir.display()),
            DeviceSpec::Shards { root, shards } => {
                write!(f, "shards:{}", root.display())?;
                if let Some(n) = shards {
                    write!(f, "?n={n}")?;
                }
                Ok(())
            }
            DeviceSpec::Tcp { addr, lanes } => {
                write!(f, "tcp:{addr}")?;
                if *lanes > 1 {
                    write!(f, "?lanes={lanes}")?;
                }
                Ok(())
            }
        }
    }
}

/// A spec's target and its parsed `?key=value` query parameters.
type TargetAndQuery<'a> = (&'a str, Vec<(&'a str, &'a str)>);

/// Splits `target[?query]` and parses the query into `(key, value)`
/// pairs, rejecting malformed ones.
fn split_query<'a>(
    rest: &'a str,
    bad: &impl Fn(&str) -> DeviceError,
) -> Result<TargetAndQuery<'a>, DeviceError> {
    let Some((target, query)) = rest.split_once('?') else {
        return Ok((rest, Vec::new()));
    };
    let mut params = Vec::new();
    for pair in query.split('&') {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| bad(&format!("query parameter `{pair}` is not key=value")))?;
        if key.is_empty() || value.is_empty() {
            return Err(bad(&format!("query parameter `{pair}` is incomplete")));
        }
        params.push((key, value));
    }
    Ok((target, params))
}

impl FromStr for DeviceSpec {
    type Err = DeviceError;

    fn from_str(text: &str) -> Result<Self, DeviceError> {
        let bad = |msg: &str| DeviceError::Spec(format!("device spec `{text}`: {msg}"));
        let (scheme, rest) = text
            .split_once(':')
            .ok_or_else(|| bad("expected `scheme:target` (file:, shards:, or tcp:)"))?;
        let int = |key: &str, v: &str| {
            v.parse::<usize>()
                .map_err(|_| bad(&format!("{key} expects an integer, got `{v}`")))
        };
        match scheme {
            "file" => {
                let (dir, params) = split_query(rest, &bad)?;
                if let Some((key, _)) = params.first() {
                    return Err(bad(&format!("file takes no query parameters (got {key})")));
                }
                if dir.is_empty() {
                    return Err(bad("file expects a directory, e.g. file:/srv/store"));
                }
                Ok(DeviceSpec::File {
                    dir: PathBuf::from(dir),
                })
            }
            "shards" => {
                let (root, params) = split_query(rest, &bad)?;
                if root.is_empty() {
                    return Err(bad("shards expects a root directory"));
                }
                let mut shards = None;
                for (key, value) in params {
                    match key {
                        "n" if shards.is_none() => {
                            let n = int("n", value)?;
                            if n == 0 {
                                return Err(bad("n must be at least 1"));
                            }
                            shards = Some(n);
                        }
                        "n" => return Err(bad("duplicate query parameter n")),
                        other => return Err(bad(&format!("unknown query parameter `{other}`"))),
                    }
                }
                Ok(DeviceSpec::Shards {
                    root: PathBuf::from(root),
                    shards,
                })
            }
            "tcp" => {
                let (addr, params) = split_query(rest, &bad)?;
                if addr.is_empty() {
                    return Err(bad("tcp expects host:port, e.g. tcp:127.0.0.1:7070"));
                }
                let mut lanes = 1;
                let mut seen = false;
                for (key, value) in params {
                    match key {
                        "lanes" if !seen => {
                            lanes = int("lanes", value)?;
                            if lanes == 0 {
                                return Err(bad("lanes must be at least 1"));
                            }
                            seen = true;
                        }
                        "lanes" => return Err(bad("duplicate query parameter lanes")),
                        other => return Err(bad(&format!("unknown query parameter `{other}`"))),
                    }
                }
                Ok(DeviceSpec::Tcp {
                    addr: addr.to_string(),
                    lanes,
                })
            }
            other => Err(bad(&format!(
                "unknown scheme `{other}` (expected file, shards, or tcp)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for text in [
            "file:/srv/store",
            "file:relative/dir",
            "shards:/srv/stair",
            "shards:/srv/stair?n=4",
            "tcp:127.0.0.1:7070",
            "tcp:127.0.0.1:7070?lanes=4",
            "tcp:example.net:9",
        ] {
            let spec: DeviceSpec = text.parse().unwrap();
            assert_eq!(spec.to_string(), text, "round trip of `{text}`");
        }
    }

    #[test]
    fn parses_to_expected_variants() {
        assert_eq!(
            "file:/a/b".parse::<DeviceSpec>().unwrap(),
            DeviceSpec::File {
                dir: PathBuf::from("/a/b")
            }
        );
        assert_eq!(
            "shards:/root?n=3".parse::<DeviceSpec>().unwrap(),
            DeviceSpec::Shards {
                root: PathBuf::from("/root"),
                shards: Some(3)
            }
        );
        // tcp addr keeps its own colon; lanes defaults to 1.
        assert_eq!(
            "tcp:10.1.2.3:7070".parse::<DeviceSpec>().unwrap(),
            DeviceSpec::Tcp {
                addr: "10.1.2.3:7070".into(),
                lanes: 1
            }
        );
    }

    #[test]
    fn lanes_of_one_renders_bare() {
        let spec: DeviceSpec = "tcp:h:1?lanes=1".parse().unwrap();
        assert_eq!(spec.to_string(), "tcp:h:1");
    }

    #[test]
    fn bad_schemes_are_rejected() {
        for text in ["", "justapath", "nfs:/x", "FILE:/x", "file", "tcp"] {
            assert!(
                text.parse::<DeviceSpec>().is_err(),
                "`{text}` should not parse"
            );
        }
    }

    #[test]
    fn bad_targets_and_query_params_are_rejected() {
        for text in [
            "file:",
            "file:/x?n=2",
            "shards:",
            "shards:/x?n=",
            "shards:/x?n=zero",
            "shards:/x?n=0",
            "shards:/x?n=2&n=3",
            "shards:/x?k=2",
            "shards:/x?n",
            "tcp:",
            "tcp:h:1?lanes=0",
            "tcp:h:1?lanes=a",
            "tcp:h:1?lanes=2&lanes=3",
            "tcp:h:1?window=8",
        ] {
            let err = text.parse::<DeviceSpec>().unwrap_err();
            assert!(
                matches!(err, DeviceError::Spec(_)),
                "`{text}` should fail as a spec error, got {err:?}"
            );
        }
    }
}
