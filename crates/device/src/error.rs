//! The unified error type every storage backend converts into.

use std::fmt;
use std::io;

/// Errors surfaced through the [`BlockDevice`](crate::BlockDevice) /
/// [`FaultAdmin`](crate::FaultAdmin) API, whatever the backend.
///
/// Backend crates provide the conversions: `stair_store::Error` and
/// `stair_net::NetError` both implement `Into<DeviceError>`, so code
/// written against the trait never sees a backend-specific error type.
#[derive(Debug)]
pub enum DeviceError {
    /// A device spec failed to parse or named an unusable target.
    Spec(String),
    /// A request fell outside the device's logical address space.
    OutOfRange(String),
    /// The backend does not support the requested operation (e.g. a
    /// remote client refusing fault administration).
    Unsupported(String),
    /// Stored or transferred data failed verification, or damage
    /// exceeded the codec's coverage.
    Corrupt(String),
    /// An underlying file or socket operation failed.
    Io(io::Error),
    /// Any other backend-reported failure, in rendered form.
    Backend(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::Spec(msg) => write!(f, "device spec error: {msg}"),
            DeviceError::OutOfRange(msg) => write!(f, "out of range: {msg}"),
            DeviceError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            DeviceError::Corrupt(msg) => write!(f, "data integrity error: {msg}"),
            DeviceError::Io(e) => write!(f, "i/o error: {e}"),
            DeviceError::Backend(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeviceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DeviceError {
    fn from(e: io::Error) -> Self {
        DeviceError::Io(e)
    }
}
