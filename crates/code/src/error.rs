//! The unified error type for every erasure codec.

use core::fmt;

/// Errors shared by every [`crate::ErasureCode`] implementation.
///
/// Each codec crate converts its native error into this type (`impl
/// From<stair::Error>`, `From<stair_sd::Error>`, `From<stair_rs::Error>`
/// live next to the respective native types), so codec-generic callers
/// like `stair-store` match on one enum instead of chaining `map_err`s.
#[derive(Clone, Debug, Eq, PartialEq)]
#[non_exhaustive]
pub enum CodeError {
    /// Invalid construction parameters or an unparsable codec spec.
    InvalidConfig(String),
    /// A malformed erasure pattern (out of range, duplicates, or a wanted
    /// set that is not a subset of the erased set).
    InvalidPattern(String),
    /// The erasure pattern exceeds what the code can repair.
    Unrecoverable(String),
    /// A stripe buffer or payload shape did not match the code.
    ShapeMismatch(String),
    /// The operation is not supported by this codec (e.g. encoding an
    /// outside-placement STAIR stripe into a bare grid).
    Unsupported(String),
    /// An internal invariant failed in the underlying codec machinery.
    Internal(String),
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidConfig(m) => write!(f, "invalid codec configuration: {m}"),
            CodeError::InvalidPattern(m) => write!(f, "invalid erasure pattern: {m}"),
            CodeError::Unrecoverable(m) => write!(f, "unrecoverable pattern: {m}"),
            CodeError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            CodeError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            CodeError::Internal(m) => write!(f, "internal codec error: {m}"),
        }
    }
}

impl std::error::Error for CodeError {}
