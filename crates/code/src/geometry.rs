//! Stripe geometry: shape, cell roles, and advertised tolerance.

use crate::CellIdx;

/// What a codec's stripes look like and what failures it claims to
/// tolerate.
///
/// The store derives everything layout-related from this: device-file
/// shapes from `n`/`r`, the logical block space from `data_cells` (one
/// block per data cell, in this order), and failure-injection scenarios
/// from `m`/`s`.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Geometry {
    /// Devices (chunks) per stripe.
    pub n: usize,
    /// Sectors (symbols) per chunk.
    pub r: usize,
    /// Whole-device failures tolerated per stripe.
    pub m: usize,
    /// Additional sector failures tolerated beyond the `m` devices
    /// (STAIR's `s = Σ e_i`, SD's `s`; `0` for plain Reed–Solomon).
    pub s: usize,
    /// Largest sector burst tolerated in a *single* surviving chunk on
    /// top of `m` device failures (STAIR's `e_max`, SD's `s`, `0` for
    /// RS). Failure injectors use this to stay within coverage.
    pub burst: usize,
    /// Cells holding user data, in logical payload order.
    pub data_cells: Vec<CellIdx>,
    /// Cells holding parity.
    pub parity_cells: Vec<CellIdx>,
}

impl Geometry {
    /// User-data sectors per stripe.
    pub fn data_per_stripe(&self) -> usize {
        self.data_cells.len()
    }

    /// Fraction of stored sectors holding user data.
    pub fn storage_efficiency(&self) -> f64 {
        self.data_cells.len() as f64 / (self.n * self.r) as f64
    }
}
