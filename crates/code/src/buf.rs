//! The flat stripe buffer shared by every codec.

use crate::{CellIdx, CodeError};

/// One stripe's worth of sectors in a single contiguous allocation.
///
/// Cell `(row, col)` is sector `row` of device `col`'s chunk, stored
/// row-major: the whole of row `i` occupies the contiguous byte range
/// `[i·cols·symbol, (i+1)·cols·symbol)`, with device `j`'s sector at
/// offset `j·symbol` within it. Row contiguity lets row-oriented codecs
/// split a row into data and parity regions without copying.
///
/// # Example
///
/// ```
/// use stair_code::StripeBuf;
///
/// let mut buf = StripeBuf::new(4, 8, 64)?;
/// buf.cell_mut((2, 3)).fill(0xA5);
/// assert!(buf.cell((2, 3)).iter().all(|&b| b == 0xA5));
/// assert!(buf.cell((0, 0)).iter().all(|&b| b == 0));
/// # Ok::<(), stair_code::CodeError>(())
/// ```
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct StripeBuf {
    rows: usize,
    cols: usize,
    symbol: usize,
    data: Vec<u8>,
}

impl StripeBuf {
    /// Allocates a zeroed `rows × cols` stripe with `symbol`-byte sectors.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::ShapeMismatch`] for a degenerate shape (any
    /// dimension zero) or a total size that overflows `usize`.
    pub fn new(rows: usize, cols: usize, symbol: usize) -> Result<Self, CodeError> {
        if rows == 0 || cols == 0 || symbol == 0 {
            return Err(CodeError::ShapeMismatch(format!(
                "stripe dimensions must be positive (got {rows}x{cols}, symbol {symbol})"
            )));
        }
        let total = rows
            .checked_mul(cols)
            .and_then(|c| c.checked_mul(symbol))
            .ok_or_else(|| {
                CodeError::ShapeMismatch(format!("stripe size {rows}x{cols}x{symbol} overflows"))
            })?;
        Ok(StripeBuf {
            rows,
            cols,
            symbol,
            data: vec![0u8; total],
        })
    }

    /// Rows (sectors per chunk, the code's `r`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns (devices per stripe, the code's `n`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Bytes per sector.
    pub fn symbol(&self) -> usize {
        self.symbol
    }

    /// True if the buffer has the given shape.
    pub fn has_shape(&self, rows: usize, cols: usize) -> bool {
        self.rows == rows && self.cols == cols
    }

    /// Validates that the buffer is `rows × cols` with a symbol size that
    /// is a multiple of `elem_bytes` (the codec's field element size) —
    /// the common entry check of every [`crate::ErasureCode`] impl.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::ShapeMismatch`] describing the mismatch.
    pub fn check_shape(
        &self,
        rows: usize,
        cols: usize,
        elem_bytes: usize,
    ) -> Result<(), CodeError> {
        if !self.has_shape(rows, cols) {
            return Err(CodeError::ShapeMismatch(format!(
                "stripe is {}x{}, code needs {rows}x{cols}",
                self.rows, self.cols
            )));
        }
        if !self.symbol.is_multiple_of(elem_bytes.max(1)) {
            return Err(CodeError::ShapeMismatch(format!(
                "symbol size {} is not a multiple of the field element size {elem_bytes}",
                self.symbol
            )));
        }
        Ok(())
    }

    /// The common front half of a parity-delta update: validates the
    /// replacement contents' length and the cell coordinate, installs the
    /// new contents, and returns the XOR delta `old ⊕ new` for the caller
    /// to fold into its dependent parities.
    ///
    /// # Errors
    ///
    /// * [`CodeError::ShapeMismatch`] on a length mismatch;
    /// * [`CodeError::InvalidPattern`] on out-of-range coordinates.
    pub fn begin_update(
        &mut self,
        cell: CellIdx,
        new_contents: &[u8],
    ) -> Result<Vec<u8>, CodeError> {
        if new_contents.len() != self.symbol {
            return Err(CodeError::ShapeMismatch(format!(
                "sector update is {} bytes, sectors are {}",
                new_contents.len(),
                self.symbol
            )));
        }
        let (row, col) = cell;
        if row >= self.rows || col >= self.cols {
            return Err(CodeError::InvalidPattern(format!(
                "({row},{col}) out of range"
            )));
        }
        let mut delta = new_contents.to_vec();
        for (d, &o) in delta.iter_mut().zip(self.cell(cell)) {
            *d ^= o;
        }
        self.set_cell(cell, new_contents);
        Ok(delta)
    }

    #[inline]
    fn offset(&self, (row, col): CellIdx) -> usize {
        assert!(
            row < self.rows && col < self.cols,
            "cell ({row},{col}) out of range for {}x{} stripe",
            self.rows,
            self.cols
        );
        (row * self.cols + col) * self.symbol
    }

    /// Borrows sector `cell`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    #[inline]
    pub fn cell(&self, cell: CellIdx) -> &[u8] {
        let at = self.offset(cell);
        &self.data[at..at + self.symbol]
    }

    /// Mutably borrows sector `cell`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    #[inline]
    pub fn cell_mut(&mut self, cell: CellIdx) -> &mut [u8] {
        let at = self.offset(cell);
        &mut self.data[at..at + self.symbol]
    }

    /// The contiguous bytes of one row: all `cols` sectors of sector-index
    /// `row` across the devices.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> &[u8] {
        let at = self.offset((row, 0));
        &self.data[at..at + self.cols * self.symbol]
    }

    /// Mutable contiguous bytes of one row (see [`StripeBuf::row`]).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_mut(&mut self, row: usize) -> &mut [u8] {
        let at = self.offset((row, 0));
        let width = self.cols * self.symbol;
        &mut self.data[at..at + width]
    }

    /// The whole allocation, row-major.
    pub fn as_flat(&self) -> &[u8] {
        &self.data
    }

    /// Copies `src` into sector `cell`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range coordinates or a length mismatch.
    pub fn set_cell(&mut self, cell: CellIdx, src: &[u8]) {
        self.cell_mut(cell).copy_from_slice(src);
    }

    /// Zero-fills the listed cells (simulated loss; decoding never reads
    /// erased cells, but zeroing makes accidental reads fail tests loudly).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range coordinates.
    pub fn erase(&mut self, cells: &[CellIdx]) {
        for &c in cells {
            self.cell_mut(c).fill(0);
        }
    }

    /// Scatters `payload` across `cells` in order, one symbol per cell.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::ShapeMismatch`] unless
    /// `payload.len() == cells.len() · symbol`.
    pub fn write_cells(&mut self, cells: &[CellIdx], payload: &[u8]) -> Result<(), CodeError> {
        if payload.len() != cells.len() * self.symbol {
            return Err(CodeError::ShapeMismatch(format!(
                "payload is {} bytes, {} cells hold {}",
                payload.len(),
                cells.len(),
                cells.len() * self.symbol
            )));
        }
        for (chunk, &cell) in payload.chunks_exact(self.symbol).zip(cells) {
            self.set_cell(cell, chunk);
        }
        Ok(())
    }

    /// Gathers the listed cells, in order, into one contiguous payload.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range coordinates.
    pub fn read_cells(&self, cells: &[CellIdx]) -> Vec<u8> {
        let mut out = Vec::with_capacity(cells.len() * self.symbol);
        for &cell in cells {
            out.extend_from_slice(self.cell(cell));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_validation() {
        assert!(StripeBuf::new(0, 8, 4).is_err());
        assert!(StripeBuf::new(4, 0, 4).is_err());
        assert!(StripeBuf::new(4, 8, 0).is_err());
        assert!(StripeBuf::new(usize::MAX, 2, 2).is_err());
        assert!(StripeBuf::new(4, 8, 16).is_ok());
    }

    #[test]
    fn cells_are_disjoint_views_of_one_allocation() {
        let mut buf = StripeBuf::new(2, 3, 4).unwrap();
        buf.cell_mut((0, 1)).fill(1);
        buf.cell_mut((1, 2)).fill(2);
        assert_eq!(buf.cell((0, 1)), &[1, 1, 1, 1]);
        assert_eq!(buf.cell((1, 2)), &[2, 2, 2, 2]);
        assert_eq!(buf.cell((0, 0)), &[0, 0, 0, 0]);
        // Row-major flat layout: row 0 = cells (0,0),(0,1),(0,2).
        assert_eq!(&buf.as_flat()[..12], &[0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0]);
        assert_eq!(buf.row(0), &buf.as_flat()[..12]);
    }

    #[test]
    fn write_read_cells_round_trip() {
        let mut buf = StripeBuf::new(2, 2, 2).unwrap();
        let cells = [(0, 0), (1, 1), (0, 1)];
        buf.write_cells(&cells, &[1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(buf.read_cells(&cells), vec![1, 2, 3, 4, 5, 6]);
        assert!(buf.write_cells(&cells, &[0; 5]).is_err());
        buf.erase(&[(1, 1)]);
        assert_eq!(buf.cell((1, 1)), &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cell_panics() {
        let buf = StripeBuf::new(2, 2, 2).unwrap();
        let _ = buf.cell((2, 0));
    }
}
