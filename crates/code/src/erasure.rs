//! Canonical erasure addressing: cell coordinates and erasure sets.

use crate::CodeError;

/// A stored sector coordinate: `(row, col)` — sector `row` of device
/// `col`'s chunk. Identical to the paper's stripe coordinates and to
/// `stair::Cell`, so patterns move between codecs without translation.
pub type CellIdx = (usize, usize);

/// A validated set of erased cells: sorted, duplicate-free.
///
/// # Example
///
/// ```
/// use stair_code::ErasureSet;
///
/// // Device 2 failed entirely, plus a 2-sector burst in device 0.
/// let set = ErasureSet::new((0..4).map(|i| (i, 2)).chain([(1, 0), (2, 0)]));
/// assert_eq!(set.len(), 6);
/// assert!(set.contains((3, 2)));
/// set.check_bounds(4, 3)?;
/// assert!(set.check_bounds(4, 2).is_err()); // device 2 out of range
/// # Ok::<(), stair_code::CodeError>(())
/// ```
#[derive(Clone, Debug, Default, Eq, PartialEq)]
pub struct ErasureSet {
    cells: Vec<CellIdx>,
}

impl ErasureSet {
    /// Builds a set from any cell iterator, sorting and deduplicating.
    pub fn new(cells: impl IntoIterator<Item = CellIdx>) -> Self {
        let mut cells: Vec<CellIdx> = cells.into_iter().collect();
        cells.sort_unstable();
        cells.dedup();
        ErasureSet { cells }
    }

    /// Every cell of `m` whole devices (`r` sectors each).
    pub fn devices(devices: &[usize], r: usize) -> Self {
        Self::new(
            devices
                .iter()
                .flat_map(|&d| (0..r).map(move |row| (row, d))),
        )
    }

    /// The erased cells, sorted.
    pub fn cells(&self) -> &[CellIdx] {
        &self.cells
    }

    /// Number of erased cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when nothing is erased.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, cell: CellIdx) -> bool {
        self.cells.binary_search(&cell).is_ok()
    }

    /// Erased-cell count per device column, over `n` devices.
    ///
    /// # Panics
    ///
    /// Panics if a cell's column is `≥ n`; call
    /// [`ErasureSet::check_bounds`] first for untrusted input.
    pub fn per_device(&self, n: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n];
        for &(_, col) in &self.cells {
            counts[col] += 1;
        }
        counts
    }

    /// Validates every coordinate against an `r × n` stripe.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidPattern`] for out-of-range cells.
    pub fn check_bounds(&self, r: usize, n: usize) -> Result<(), CodeError> {
        for &(row, col) in &self.cells {
            if row >= r || col >= n {
                return Err(CodeError::InvalidPattern(format!(
                    "cell ({row},{col}) out of range for r={r} n={n}"
                )));
            }
        }
        Ok(())
    }

    /// Iterates the erased cells in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = CellIdx> + '_ {
        self.cells.iter().copied()
    }
}

impl FromIterator<CellIdx> for ErasureSet {
    fn from_iter<I: IntoIterator<Item = CellIdx>>(iter: I) -> Self {
        Self::new(iter)
    }
}

impl From<&[CellIdx]> for ErasureSet {
    fn from(cells: &[CellIdx]) -> Self {
        Self::new(cells.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_and_deduped() {
        let set = ErasureSet::new([(1, 1), (0, 2), (1, 1), (0, 0)]);
        assert_eq!(set.cells(), &[(0, 0), (0, 2), (1, 1)]);
        assert_eq!(set.len(), 3);
        assert!(set.contains((0, 2)));
        assert!(!set.contains((2, 2)));
    }

    #[test]
    fn device_helper_and_counts() {
        let set = ErasureSet::devices(&[1, 3], 2);
        assert_eq!(set.cells(), &[(0, 1), (0, 3), (1, 1), (1, 3)]);
        assert_eq!(set.per_device(4), vec![0, 2, 0, 2]);
    }

    #[test]
    fn bounds_checking() {
        let set = ErasureSet::new([(3, 7)]);
        assert!(set.check_bounds(4, 8).is_ok());
        assert!(set.check_bounds(3, 8).is_err());
        assert!(set.check_bounds(4, 7).is_err());
    }
}
