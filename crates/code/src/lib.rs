//! The shared erasure-code vocabulary of the workspace.
//!
//! The STAIR paper's central claim is *comparative*: STAIR codes tolerate
//! the same device-plus-sector failure patterns as SD codes with less
//! space and cheaper updates, and both improve on plain Reed–Solomon.
//! Making that comparison on a real I/O path requires all three codecs to
//! speak one language. This crate defines that language; the codec crates
//! (`stair`, `stair-sd`) implement it, and `stair-store` consumes it.
//!
//! # The trait
//!
//! [`ErasureCode`] is the contract every codec satisfies:
//!
//! * [`ErasureCode::geometry`] — the stripe shape: `n` devices × `r`
//!   sectors, which cells hold data (in logical payload order) and which
//!   hold parity, and the advertised failure tolerance;
//! * [`ErasureCode::encode`] — recompute every parity cell of a stripe;
//! * [`ErasureCode::plan`] / [`ErasureCode::plan_recover`] — turn an
//!   [`ErasureSet`] into a reusable [`Plan`] (planning is where decoding
//!   cost lives; plans are built once per erasure pattern and applied to
//!   any number of stripes);
//! * [`ErasureCode::apply`] — execute a plan against one stripe;
//! * [`ErasureCode::update`] — overwrite one data cell and patch only the
//!   dependent parity cells (the small-write path), returning which parity
//!   cells were touched.
//!
//! # The stripe buffer
//!
//! [`StripeBuf`] is the one stripe representation shared by every
//! implementation: a single contiguous allocation of `rows × cols ×
//! symbol` bytes, row-major, with `(row, col)` cell views. One row is
//! contiguous (`cols · symbol` bytes), so row-oriented codecs can split a
//! row into data and parity regions without copying. It replaces the
//! per-cell `Vec<Vec<u8>>` shapes the codec crates used to carry.
//!
//! # Addressing
//!
//! A [`CellIdx`] is `(row, col)`: sector `row` of device `col`'s chunk —
//! the paper's coordinates, identical across codecs. An [`ErasureSet`] is
//! a validated, sorted, duplicate-free set of erased cells.
//!
//! # Codec specs
//!
//! [`CodecSpec`] is the one-line grammar the store and CLI use to name a
//! codec (`stair store init --code <spec>`):
//!
//! ```text
//! stair:n,r,m,e1-e2-...   e.g. stair:8,4,2,1-1-2
//! sd:n,r,m,s              e.g. sd:6,4,1,2
//! rs:n,r,m                e.g. rs:8,4,2
//! ```
//!
//! Specs round-trip through `Display`/`FromStr` and are embedded in the
//! store superblock, so a store directory records which codec wrote it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buf;
mod erasure;
mod error;
mod geometry;
mod plan;
mod spec;

pub use buf::StripeBuf;
pub use erasure::{CellIdx, ErasureSet};
pub use error::CodeError;
pub use geometry::Geometry;
pub use plan::Plan;
pub use spec::CodecSpec;

/// The common interface every erasure code in the workspace implements.
///
/// Implementations operate on [`StripeBuf`] stripes of their
/// [`Geometry`]'s shape. All methods validate the buffer shape and return
/// [`CodeError::ShapeMismatch`] rather than panicking on foreign stripes.
pub trait ErasureCode: Send + Sync {
    /// The stripe geometry: shape, cell roles, and failure tolerance.
    fn geometry(&self) -> Geometry;

    /// Recomputes every parity cell from the data cells, in place.
    ///
    /// # Errors
    ///
    /// [`CodeError::ShapeMismatch`] if the buffer does not match the
    /// geometry.
    fn encode(&self, stripe: &mut StripeBuf) -> Result<(), CodeError>;

    /// Builds a reusable plan recovering every cell of `erased`.
    ///
    /// # Errors
    ///
    /// * [`CodeError::InvalidPattern`] for out-of-range coordinates;
    /// * [`CodeError::Unrecoverable`] if the pattern exceeds the code's
    ///   capability.
    fn plan(&self, erased: &ErasureSet) -> Result<Plan, CodeError>;

    /// Builds a plan recovering only the `wanted` subset of `erased` — the
    /// degraded-read path. The default implementation plans a full repair;
    /// codecs with partial-recovery support (STAIR) override it.
    ///
    /// # Errors
    ///
    /// As [`ErasureCode::plan`], plus [`CodeError::InvalidPattern`] if
    /// `wanted` is not a subset of `erased`.
    fn plan_recover(&self, erased: &ErasureSet, wanted: &[CellIdx]) -> Result<Plan, CodeError> {
        for w in wanted {
            if !erased.contains(*w) {
                return Err(CodeError::InvalidPattern(format!(
                    "wanted cell {w:?} is not in the erased set"
                )));
            }
        }
        self.plan(erased)
    }

    /// Executes a plan against one stripe, reconstructing the cells in
    /// [`Plan::recovers`] in place.
    ///
    /// # Errors
    ///
    /// * [`CodeError::ShapeMismatch`] for foreign buffers;
    /// * [`CodeError::InvalidPattern`] if the plan was built by a
    ///   different codec (unrecognized plan detail).
    fn apply(&self, plan: &Plan, stripe: &mut StripeBuf) -> Result<(), CodeError>;

    /// Overwrites data cell `cell` with `new_contents` and patches every
    /// dependent parity cell in place, returning the parity cells touched
    /// (the realized update penalty, §6.3 of the paper).
    ///
    /// The stripe must already be consistently encoded; after the call it
    /// is again consistently encoded.
    ///
    /// # Errors
    ///
    /// * [`CodeError::InvalidPattern`] if `cell` is not a data cell;
    /// * [`CodeError::ShapeMismatch`] for foreign buffers or wrong-length
    ///   contents.
    fn update(
        &self,
        stripe: &mut StripeBuf,
        cell: CellIdx,
        new_contents: &[u8],
    ) -> Result<Vec<CellIdx>, CodeError>;
}
