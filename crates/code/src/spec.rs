//! The codec spec grammar: one-line, space-free codec descriptors.

use core::fmt;
use std::str::FromStr;

use crate::CodeError;

/// A parsed codec descriptor.
///
/// The grammar (all fields decimal, no spaces — specs embed in the store
/// superblock and in CLI flags):
///
/// ```text
/// stair:n,r,m,e1-e2-...   a STAIR code (e non-decreasing)
/// sd:n,r,m,s              a sector-disk code
/// rs:n,r,m                a Reed–Solomon array code (no sector parity)
/// ```
///
/// # Example
///
/// ```
/// use stair_code::CodecSpec;
///
/// let spec: CodecSpec = "stair:8,4,2,1-1-2".parse()?;
/// assert_eq!(spec.to_string(), "stair:8,4,2,1-1-2");
/// assert_eq!(spec.n(), 8);
/// assert_eq!("sd:6,4,1,2".parse::<CodecSpec>()?.family(), "sd");
/// # Ok::<(), stair_code::CodeError>(())
/// ```
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum CodecSpec {
    /// A STAIR code `(n, r, m, e)`.
    Stair {
        /// Devices per stripe.
        n: usize,
        /// Sectors per chunk.
        r: usize,
        /// Tolerated device failures.
        m: usize,
        /// Sector-failure coverage vector (non-decreasing).
        e: Vec<usize>,
    },
    /// A sector-disk code `(n, r, m, s)`.
    Sd {
        /// Devices per stripe.
        n: usize,
        /// Sectors per chunk.
        r: usize,
        /// Parity devices.
        m: usize,
        /// Parity sectors beyond the parity devices.
        s: usize,
    },
    /// A Reed–Solomon array code `(n, r, m)`.
    Rs {
        /// Devices per stripe.
        n: usize,
        /// Sectors per chunk.
        r: usize,
        /// Parity devices.
        m: usize,
    },
}

impl CodecSpec {
    /// The codec family name (`"stair"`, `"sd"`, or `"rs"`).
    pub fn family(&self) -> &'static str {
        match self {
            CodecSpec::Stair { .. } => "stair",
            CodecSpec::Sd { .. } => "sd",
            CodecSpec::Rs { .. } => "rs",
        }
    }

    /// Devices per stripe.
    pub fn n(&self) -> usize {
        match *self {
            CodecSpec::Stair { n, .. } | CodecSpec::Sd { n, .. } | CodecSpec::Rs { n, .. } => n,
        }
    }

    /// Sectors per chunk.
    pub fn r(&self) -> usize {
        match *self {
            CodecSpec::Stair { r, .. } | CodecSpec::Sd { r, .. } | CodecSpec::Rs { r, .. } => r,
        }
    }

    /// Tolerated whole-device failures.
    pub fn m(&self) -> usize {
        match *self {
            CodecSpec::Stair { m, .. } | CodecSpec::Sd { m, .. } | CodecSpec::Rs { m, .. } => m,
        }
    }

    /// Tolerated sector failures beyond the `m` devices (STAIR's
    /// `s = Σ e_i`, SD's `s`, `0` for plain Reed–Solomon) — matches
    /// `Geometry::s` without building the codec.
    pub fn s(&self) -> usize {
        match self {
            CodecSpec::Stair { e, .. } => e.iter().sum(),
            CodecSpec::Sd { s, .. } => *s,
            CodecSpec::Rs { .. } => 0,
        }
    }
}

impl fmt::Display for CodecSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecSpec::Stair { n, r, m, e } => {
                let e: Vec<String> = e.iter().map(|x| x.to_string()).collect();
                write!(f, "stair:{n},{r},{m},{}", e.join("-"))
            }
            CodecSpec::Sd { n, r, m, s } => write!(f, "sd:{n},{r},{m},{s}"),
            CodecSpec::Rs { n, r, m } => write!(f, "rs:{n},{r},{m}"),
        }
    }
}

impl FromStr for CodecSpec {
    type Err = CodeError;

    fn from_str(text: &str) -> Result<Self, CodeError> {
        let bad = |msg: &str| CodeError::InvalidConfig(format!("codec spec `{text}`: {msg}"));
        let (family, rest) = text
            .split_once(':')
            .ok_or_else(|| bad("expected `family:params`"))?;
        let fields: Vec<&str> = rest.split(',').collect();
        let int = |v: &str| {
            v.trim()
                .parse::<usize>()
                .map_err(|_| bad(&format!("bad integer `{v}`")))
        };
        match family {
            "stair" => {
                let [n, r, m, e] = fields.as_slice() else {
                    return Err(bad("stair expects `stair:n,r,m,e1-e2-...`"));
                };
                let e: Vec<usize> = e
                    .split('-')
                    .map(int)
                    .collect::<Result<_, _>>()
                    .map_err(|_| bad("e expects dash-separated integers, e.g. 1-1-2"))?;
                Ok(CodecSpec::Stair {
                    n: int(n)?,
                    r: int(r)?,
                    m: int(m)?,
                    e,
                })
            }
            "sd" => {
                let [n, r, m, s] = fields.as_slice() else {
                    return Err(bad("sd expects `sd:n,r,m,s`"));
                };
                Ok(CodecSpec::Sd {
                    n: int(n)?,
                    r: int(r)?,
                    m: int(m)?,
                    s: int(s)?,
                })
            }
            "rs" => {
                let [n, r, m] = fields.as_slice() else {
                    return Err(bad("rs expects `rs:n,r,m`"));
                };
                Ok(CodecSpec::Rs {
                    n: int(n)?,
                    r: int(r)?,
                    m: int(m)?,
                })
            }
            other => Err(bad(&format!(
                "unknown family `{other}` (expected stair, sd, or rs)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for text in [
            "stair:8,4,2,1-1-2",
            "stair:8,16,2,3",
            "sd:6,4,1,2",
            "rs:8,4,2",
        ] {
            let spec: CodecSpec = text.parse().unwrap();
            assert_eq!(spec.to_string(), text);
        }
    }

    #[test]
    fn accessors() {
        let spec: CodecSpec = "sd:6,4,1,2".parse().unwrap();
        assert_eq!((spec.n(), spec.r(), spec.m()), (6, 4, 1));
        assert_eq!(spec.s(), 2);
        assert_eq!(spec.family(), "sd");
        assert_eq!("stair:8,4,2,1-1-2".parse::<CodecSpec>().unwrap().s(), 4);
        assert_eq!("rs:8,4,2".parse::<CodecSpec>().unwrap().s(), 0);
        let spec: CodecSpec = "stair:8,4,2,1-1-2".parse().unwrap();
        assert_eq!(
            spec,
            CodecSpec::Stair {
                n: 8,
                r: 4,
                m: 2,
                e: vec![1, 1, 2]
            }
        );
    }

    #[test]
    fn malformed_specs_rejected() {
        for text in [
            "",
            "stair",
            "stair:8,4,2",
            "stair:8,4,2,1,2",
            "stair:8,4,2,1-x",
            "sd:6,4,1",
            "sd:6,4,1,2,3",
            "rs:8,4",
            "raid5:4,2,1",
            "stair:a,4,2,1",
        ] {
            assert!(
                text.parse::<CodecSpec>().is_err(),
                "`{text}` should not parse"
            );
        }
    }
}
