//! Type-erased decoding plans.

use std::any::Any;

use crate::CellIdx;

/// A reusable recovery recipe for one erasure pattern.
///
/// Plans separate the expensive part of decoding (solving for recovery
/// coefficients, scheduling peeling steps) from the cheap part (streaming
/// byte regions through the coefficients), so one plan repairs any number
/// of stripes carrying the same pattern — the idiom `stair-store` uses
/// for whole-device rebuilds.
///
/// The `detail` payload is codec-private: each [`crate::ErasureCode`]
/// implementation stores its own schedule/matrix type and downcasts it in
/// `apply`. Handing a plan to a different codec yields
/// [`crate::CodeError::InvalidPattern`], not a wrong answer.
#[derive(Debug)]
pub struct Plan {
    recovers: Vec<CellIdx>,
    mult_xors: Option<usize>,
    detail: Box<dyn Any + Send + Sync>,
}

impl Plan {
    /// Wraps a codec-private plan payload.
    pub fn new(recovers: Vec<CellIdx>, detail: impl Any + Send + Sync) -> Self {
        Plan {
            recovers,
            mult_xors: None,
            detail: Box::new(detail),
        }
    }

    /// Attaches the planned `Mult_XOR` count (the paper's decoding-cost
    /// metric), where the codec can compute it.
    pub fn with_mult_xors(mut self, count: usize) -> Self {
        self.mult_xors = Some(count);
        self
    }

    /// The cells this plan reconstructs.
    pub fn recovers(&self) -> &[CellIdx] {
        &self.recovers
    }

    /// Planned `Mult_XOR` operations per stripe, if the codec reports it.
    pub fn mult_xors(&self) -> Option<usize> {
        self.mult_xors
    }

    /// Borrows the codec-private payload, if it is a `T`.
    pub fn detail<T: Any>(&self) -> Option<&T> {
        self.detail.downcast_ref::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detail_downcasts_to_the_stored_type_only() {
        let plan = Plan::new(vec![(0, 1)], String::from("payload")).with_mult_xors(7);
        assert_eq!(plan.recovers(), &[(0, 1)]);
        assert_eq!(plan.mult_xors(), Some(7));
        assert_eq!(plan.detail::<String>().unwrap(), "payload");
        assert!(plan.detail::<usize>().is_none());
    }
}
