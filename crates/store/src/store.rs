//! The stripe-store engine: a block-addressable, file-backed store laid
//! out across `n` per-device files and protected by any
//! [`stair_code::ErasureCode`] — STAIR, SD, or plain Reed–Solomon.
//!
//! # Data path design
//!
//! * **Writes** are batched per stripe. A write covering *every* data
//!   block of a stripe never reads old state: the stripe is rebuilt in
//!   memory and fully re-encoded (one sequential pass). A partial write
//!   loads the stripe, overwrites the dirty data sectors, and patches only
//!   the dependent parity sectors via the codec's parity-delta update
//!   ([`stair_code::ErasureCode::update`]) — the §6.3 update-penalty path,
//!   now measurable per codec.
//! * **Reads** verify every sector against the Fletcher-32 table. A clean
//!   stripe is served straight from the data sectors. Any missing file,
//!   short read, or checksum mismatch switches the stripe to a **degraded
//!   read**: the erasure set is assembled and the codec's planner
//!   ([`stair_code::ErasureCode::plan_recover`]) reconstructs exactly the
//!   requested sectors.
//! * All sector I/O is positioned (`pread`/`pwrite`), and stripes are
//!   guarded by striped locks, so reads, writes, scrubbing, and repair of
//!   *different* stripes proceed concurrently.
//!
//! Stripes move through the engine as flat [`StripeBuf`]s — the same
//! memory the codecs encode and decode in place, with no per-cell
//! reshaping between the I/O layer and the math.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use stair_code::{CellIdx, CodeError, CodecSpec, ErasureCode, ErasureSet, Geometry, StripeBuf};

use crate::codec::build_codec;
use crate::device::{DeviceSet, SectorRead};
use crate::integrity::{DeviceState, Integrity};
use crate::journal::{env_journal_segment, Journal};
use crate::layout::BlockMap;
use crate::meta::StoreMeta;
use crate::Error;

/// Geometry for [`StripeStore::create`].
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// Which erasure code protects the stripes.
    pub code: CodecSpec,
    /// Bytes per sector (= logical block size).
    pub symbol: usize,
    /// Stripes in the store.
    pub stripes: usize,
}

impl Default for StoreOptions {
    /// The paper's running example (`stair:8,4,2,1-1-2`) with 512-byte
    /// sectors and 64 stripes.
    fn default() -> Self {
        StoreOptions {
            code: CodecSpec::Stair {
                n: 8,
                r: 4,
                m: 2,
                e: vec![1, 1, 2],
            },
            symbol: 512,
            stripes: 64,
        }
    }
}

/// Statistics returned by [`StripeStore::write_at`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteReport {
    /// Logical blocks written.
    pub blocks_written: usize,
    /// Stripes the write touched.
    pub stripes_touched: usize,
    /// Stripes served by the full-re-encode path.
    pub full_stripe_encodes: usize,
    /// Individual parity-delta sector updates performed.
    pub delta_updates: usize,
    /// Parity sectors patched by delta updates.
    pub parity_sectors_patched: usize,
    /// Previously-damaged sectors opportunistically rewritten with
    /// reconstructed contents.
    pub sectors_healed: usize,
}

/// A point-in-time summary of the store's health and geometry.
#[derive(Clone, Debug)]
pub struct StoreStatus {
    /// The codec spec protecting the stripes.
    pub codec: CodecSpec,
    /// Logical capacity in bytes.
    pub capacity: u64,
    /// Logical block size in bytes.
    pub block_size: usize,
    /// Stripe count.
    pub stripes: usize,
    /// Data blocks per stripe.
    pub blocks_per_stripe: usize,
    /// Devices currently failed (no backing file).
    pub failed_devices: Vec<usize>,
    /// Devices currently being rebuilt.
    pub rebuilding_devices: Vec<usize>,
    /// Known-damaged sectors awaiting repair.
    pub known_bad_sectors: usize,
    /// Whether the previous close checkpointed the journal (a fresh
    /// store reports `true`; after a crash, `false` until the next
    /// clean shutdown).
    pub clean_shutdown: bool,
    /// Journal records replayed when this store handle opened.
    pub replayed_records: u64,
}

/// A point-in-time snapshot of the store's data-path instrumentation:
/// cumulative counts since the store handle family was opened (handles
/// cloned from one [`StripeStore`] share counters). The batched submit
/// path exists to shrink exactly these numbers — a batch of N
/// same-stripe writes should cost one lock acquisition and one codec
/// pass, not N — so tests and benchmarks assert on deltas of this
/// snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Stripe-lock acquisitions (foreground I/O, scrub, and repair all
    /// take stripe locks).
    pub stripe_locks: u64,
    /// Full-stripe encode passes (`ErasureCode::encode`).
    pub encode_passes: u64,
    /// Parity-delta update calls (`ErasureCode::update`), one per
    /// dirty cell.
    pub delta_update_calls: u64,
    /// Recovery plan applications (`ErasureCode::apply`) on the
    /// foreground read/write path.
    pub recover_passes: u64,
}

/// The live counters behind [`IoStats`]; relaxed ordering is enough
/// because readers only ever want monotonic totals, not ordering
/// against data operations.
#[derive(Default)]
pub(crate) struct Counters {
    stripe_locks: AtomicU64,
    encode_passes: AtomicU64,
    delta_update_calls: AtomicU64,
    recover_passes: AtomicU64,
    /// Progress gauge: stripes completed by the current (or last) scrub
    /// pass. Reset when a pass starts, so a concurrent metrics reader
    /// watches it climb from 0 to the stripe count.
    pub(crate) scrub_stripes_done: AtomicU64,
    /// Progress gauge: stripes completed by the current (or last)
    /// repair pass.
    pub(crate) repair_stripes_done: AtomicU64,
    /// Journal records replayed at open (0 after a clean shutdown).
    pub(crate) journal_replayed: AtomicU64,
}

impl Counters {
    pub(crate) fn count_encode(&self) {
        self.encode_passes.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn count_update(&self) {
        self.delta_update_calls.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn count_recover(&self) {
        self.recover_passes.fetch_add(1, Ordering::Relaxed);
    }
}

pub(crate) struct Shared {
    pub(crate) dir: PathBuf,
    pub(crate) meta: StoreMeta,
    pub(crate) codec: Box<dyn ErasureCode>,
    pub(crate) geometry: Geometry,
    pub(crate) blocks: BlockMap,
    pub(crate) devices: DeviceSet,
    pub(crate) integrity: Integrity,
    pub(crate) counters: Counters,
    pub(crate) journal: Journal,
    /// Sticky: whether the superblock said the *previous* close was
    /// clean, as read when this handle family opened.
    pub(crate) clean_shutdown: bool,
    stripe_locks: Vec<Mutex<()>>,
}

impl Drop for Shared {
    /// Best-effort clean shutdown on the last handle: make everything
    /// durable, truncate the journal, and mark the superblock clean. A
    /// crash (the whole point of the journal) simply never runs this —
    /// the superblock then still says `clean_shutdown 0` and the next
    /// open replays. Errors are ignored: failing to mark clean only
    /// costs the next open a (correct, idempotent) replay.
    fn drop(&mut self) {
        let ok = self
            .journal
            .checkpoint(|| {
                self.devices.sync()?;
                self.integrity.persist()
            })
            .is_ok();
        if ok {
            let mut meta = self.meta.clone();
            meta.clean_shutdown = true;
            let _ = meta.save(&self.dir);
        }
    }
}

/// The stripe-store engine. Cheap to clone (`Arc` inside); clones share
/// the same store, so foreground I/O, scrubbing, and repair can run from
/// different threads concurrently.
#[derive(Clone)]
pub struct StripeStore {
    pub(crate) shared: Arc<Shared>,
}

impl StripeStore {
    /// Creates a new zero-filled store under `dir` (created if absent).
    ///
    /// A zero store is consistent by linearity: parity over all-zero data
    /// is all-zero, so freshly created devices already verify.
    ///
    /// # Errors
    ///
    /// Fails if the spec does not describe a constructible codec, the
    /// scalar geometry is degenerate (zero `symbol`/`stripes` — validated
    /// here, not just on reopen), or any file operation fails (including
    /// `dir` already holding a store).
    pub fn create(dir: &Path, opts: &StoreOptions) -> Result<Self, Error> {
        let meta = StoreMeta {
            codec: opts.code.clone(),
            symbol: opts.symbol,
            stripes: opts.stripes,
            journal_segment: env_journal_segment(),
            // The store is live from here until a clean close.
            clean_shutdown: false,
        };
        // The same checks `open` applies when parsing the superblock, so a
        // store that creates is always a store that reopens.
        meta.validate()?;
        let codec = build_codec(&meta.codec)?;
        let geometry = codec.geometry();
        std::fs::create_dir_all(dir)?;
        // Device files first (create_new fails fast on an existing store);
        // the superblock is written only once everything else succeeded, so
        // a failed init never clobbers an existing store's metadata.
        let devices = DeviceSet::create(dir, geometry.n, geometry.r, meta.symbol, meta.stripes)?;
        let integrity = Integrity::create(dir, geometry.n, geometry.r, meta.symbol, meta.stripes)?;
        let journal = Journal::open_or_create(dir, meta.symbol, meta.journal_segment)?;
        meta.save(dir)?;
        // A fresh store has nothing to recover: report the previous
        // shutdown (vacuously) clean.
        Self::assemble(dir, meta, codec, devices, integrity, journal, true)
    }

    /// Opens an existing store, rebuilding whichever codec the superblock
    /// names (v2 `codec` specs, or legacy v1 STAIR superblocks).
    ///
    /// A device whose backing file is missing but which the health record
    /// still lists as healthy is demoted to failed (crash between a
    /// failure and its record, or manual file deletion).
    ///
    /// # Errors
    ///
    /// Fails on absent/corrupt metadata or unreadable integrity state.
    pub fn open(dir: &Path) -> Result<Self, Error> {
        let (mut meta, codec) = StoreMeta::load_with_codec(dir)?;
        let geometry = codec.geometry();
        let devices = DeviceSet::open(dir, geometry.n, geometry.r, meta.symbol, meta.stripes);
        let integrity = Integrity::load(dir, geometry.n, geometry.r, meta.stripes)?;
        for dev in 0..geometry.n {
            if !devices.is_present(dev) {
                integrity.update_health(|h| {
                    if h.devices[dev] == DeviceState::Healthy {
                        h.devices[dev] = DeviceState::Failed;
                    }
                });
            }
        }
        let journal = Journal::open_or_create(dir, meta.symbol, meta.journal_segment)?;
        let was_clean = meta.clean_shutdown;
        meta.clean_shutdown = false;
        let store = Self::assemble(dir, meta, codec, devices, integrity, journal, was_clean)?;
        // Finish any commit a crash interrupted, then mark the store
        // live (also upgrades v1/v2 superblocks to v3 in place).
        store.replay_journal()?;
        store.shared.meta.save(dir)?;
        Ok(store)
    }

    /// [`StripeStore::open`] if `dir` holds a store (a superblock is
    /// present), else [`StripeStore::create`] with `opts` — the
    /// recovery-or-bootstrap entry point servers use, with the replay
    /// semantics of `open`.
    ///
    /// # Errors
    ///
    /// Propagates whichever of the two paths ran.
    pub fn open_or_create(dir: &Path, opts: &StoreOptions) -> Result<Self, Error> {
        if dir.join(crate::meta::META_FILE).exists() {
            Self::open(dir)
        } else {
            Self::create(dir, opts)
        }
    }

    /// Replays every whole journal record — rewriting the recorded
    /// post-image cells *and* their checksums (after a crash the
    /// on-disk checksum table is stale relative to any in-place writes
    /// that raced it) — then checkpoints, leaving the store scrub-clean
    /// and the journal empty. Idempotent: records are absolute post-
    /// images applied in append order.
    fn replay_journal(&self) -> Result<u64, Error> {
        let sh = &self.shared;
        let replayed = sh.journal.replay(|rec| {
            if rec.stripe >= sh.meta.stripes {
                // A record for a stripe this store cannot hold is not
                // replayable damage worth wedging the open over.
                return Ok(());
            }
            let _guard = self.lock_stripe(rec.stripe);
            if rec.encode {
                return self.replay_data_image(rec);
            }
            let devices = sh.integrity.device_states();
            let mut healed: Vec<(usize, usize, usize)> = Vec::new();
            for &((row, dev), data) in &rec.cells {
                if row >= sh.geometry.r || dev >= sh.geometry.n {
                    continue;
                }
                if devices[dev] == DeviceState::Failed {
                    continue; // lives on implicitly through parity
                }
                sh.devices.write_sector(dev, rec.stripe, row, data)?;
                sh.integrity.record(rec.stripe, row, dev, data);
                healed.push((rec.stripe, row, dev));
            }
            sh.integrity.update_health(|h| {
                for key in &healed {
                    h.bad_sectors.remove(key);
                }
            });
            Ok(())
        })?;
        sh.counters
            .journal_replayed
            .store(replayed, Ordering::Relaxed);
        // Make the replayed state durable and truncate the journal.
        sh.journal.checkpoint(|| {
            sh.devices.sync()?;
            sh.integrity.persist()
        })?;
        Ok(replayed)
    }

    /// Replays one data-image record (caller holds the stripe lock):
    /// rebuilds the stripe from the journaled data cells, recomputes
    /// parity, and persists every writable cell. The writer always
    /// journals the complete data-cell set; should a record somehow
    /// miss one, the current on-disk bytes stand in (best effort — an
    /// unreadable sector stays zero), keeping replay total.
    fn replay_data_image(&self, rec: &crate::journal::ReplayRecord<'_>) -> Result<(), Error> {
        let sh = &self.shared;
        let geom = &sh.geometry;
        let mut stripe = StripeBuf::new(geom.r, geom.n, sh.meta.symbol)?;
        let mut have: std::collections::BTreeMap<CellIdx, &[u8]> =
            rec.cells.iter().copied().collect();
        for &cell in &geom.data_cells {
            if let Some(data) = have.remove(&cell) {
                stripe.set_cell(cell, data);
            } else {
                let (row, dev) = cell;
                let _ = sh
                    .devices
                    .read_sector(dev, rec.stripe, row, stripe.cell_mut(cell))?;
            }
        }
        sh.codec.encode(&mut stripe)?;
        let targets = self.write_back_targets(&stripe, None);
        self.apply_write_back(rec.stripe, &targets)?;
        Ok(())
    }

    fn assemble(
        dir: &Path,
        meta: StoreMeta,
        codec: Box<dyn ErasureCode>,
        devices: DeviceSet,
        integrity: Integrity,
        journal: Journal,
        clean_shutdown: bool,
    ) -> Result<Self, Error> {
        let geometry = codec.geometry();
        let blocks = BlockMap::new(geometry.data_cells.clone(), meta.symbol, meta.stripes);
        let stripe_locks = (0..meta.stripes.clamp(1, 64))
            .map(|_| Mutex::new(()))
            .collect();
        Ok(StripeStore {
            shared: Arc::new(Shared {
                dir: dir.to_path_buf(),
                meta,
                codec,
                geometry,
                blocks,
                devices,
                integrity,
                counters: Counters::default(),
                journal,
                clean_shutdown,
                stripe_locks,
            }),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// The codec spec recorded in the superblock.
    pub fn codec_spec(&self) -> &CodecSpec {
        &self.shared.meta.codec
    }

    /// The codec's stripe geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.shared.geometry
    }

    /// The live codec (e.g. for planning custom recoveries).
    pub fn codec(&self) -> &dyn ErasureCode {
        self.shared.codec.as_ref()
    }

    /// Logical block size in bytes.
    pub fn block_size(&self) -> usize {
        self.shared.blocks.block_size()
    }

    /// Total logical capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.shared.blocks.capacity()
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.shared.meta.stripes
    }

    /// Data blocks per stripe.
    pub fn blocks_per_stripe(&self) -> usize {
        self.shared.blocks.blocks_per_stripe()
    }

    /// Current health and geometry summary.
    pub fn status(&self) -> StoreStatus {
        let health = self.shared.integrity.health();
        let by_state = |want: DeviceState| {
            health
                .devices
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s == want)
                .map(|(j, _)| j)
                .collect::<Vec<_>>()
        };
        StoreStatus {
            codec: self.shared.meta.codec.clone(),
            capacity: self.capacity(),
            block_size: self.block_size(),
            stripes: self.stripe_count(),
            blocks_per_stripe: self.blocks_per_stripe(),
            failed_devices: by_state(DeviceState::Failed),
            rebuilding_devices: by_state(DeviceState::Rebuilding),
            known_bad_sectors: health.bad_sectors.len(),
            clean_shutdown: self.shared.clean_shutdown,
            replayed_records: self
                .shared
                .counters
                .journal_replayed
                .load(Ordering::Relaxed),
        }
    }

    /// Persists the checksum table, health record, and device data,
    /// then truncates the journal — a full checkpoint: after `flush`
    /// returns, nothing depends on the journal any more.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn flush(&self) -> Result<(), Error> {
        let sh = &self.shared;
        sh.journal.checkpoint(|| {
            sh.devices.sync()?;
            sh.integrity.persist()
        })
    }

    // Stripe locks guard no data (`Mutex<()>` taken for mutual exclusion
    // only), so a poisoned lock — some worker panicked mid-stripe — is
    // safe to keep using: damage the panicking thread left on disk is
    // exactly what checksum verification and degraded reads already
    // handle. Propagating the panic instead would take down every thread
    // that later touches the same stripe (the serve path's cascade).
    pub(crate) fn lock_stripe(&self, stripe: usize) -> MutexGuard<'_, ()> {
        let locks = &self.shared.stripe_locks;
        self.shared
            .counters
            .stripe_locks
            .fetch_add(1, Ordering::Relaxed);
        locks[stripe % locks.len()]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Locks every pool slot covering `stripes` at once, for a batch
    /// that holds its stripes from staging through group commit. The
    /// pool maps stripes by modulo, so two stripes can share a slot —
    /// slots are deduplicated and taken in ascending order (the one
    /// global order, making concurrent batches deadlock-free; single
    /// -stripe paths hold at most one slot and cannot form a cycle).
    pub(crate) fn lock_stripes(&self, stripes: &[usize]) -> Vec<MutexGuard<'_, ()>> {
        let locks = &self.shared.stripe_locks;
        let mut slots: Vec<usize> = stripes.iter().map(|s| s % locks.len()).collect();
        slots.sort_unstable();
        slots.dedup();
        self.shared
            .counters
            .stripe_locks
            .fetch_add(slots.len() as u64, Ordering::Relaxed);
        slots
            .into_iter()
            .map(|s| {
                locks[s]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            })
            .collect()
    }

    /// Snapshot of the cumulative data-path instrumentation counters.
    /// Clones of one store share counters, so a handle cloned before
    /// traffic observes everything the other handles did.
    pub fn io_stats(&self) -> IoStats {
        let c = &self.shared.counters;
        IoStats {
            stripe_locks: c.stripe_locks.load(Ordering::Relaxed),
            encode_passes: c.encode_passes.load(Ordering::Relaxed),
            delta_update_calls: c.delta_update_calls.load(Ordering::Relaxed),
            recover_passes: c.recover_passes.load(Ordering::Relaxed),
        }
    }

    /// This store's [`IoStats`] and scrub/repair progress folded into a
    /// metrics snapshot under `store.*` names — the per-instance half of
    /// [`BlockDevice::metrics`](stair_device::BlockDevice::metrics)
    /// (process-global GF kernel counters are added once by the caller,
    /// via [`gf_metrics`](crate::gf_metrics), so aggregating several
    /// stores does not multiply them).
    pub fn store_metrics(&self) -> stair_obs::MetricsSnapshot {
        let stats = self.io_stats();
        let c = &self.shared.counters;
        let mut snap = stair_obs::MetricsSnapshot::default();
        snap.add_counter("store.stripe_locks", stats.stripe_locks);
        snap.add_counter("store.encode_passes", stats.encode_passes);
        snap.add_counter("store.delta_update_calls", stats.delta_update_calls);
        snap.add_counter("store.recover_passes", stats.recover_passes);
        snap.add_gauge(
            "store.scrub.stripes_done",
            c.scrub_stripes_done.load(Ordering::Relaxed) as i64,
        );
        snap.add_gauge(
            "store.repair.stripes_done",
            c.repair_stripes_done.load(Ordering::Relaxed) as i64,
        );
        snap.add_gauge("store.stripes", self.stripe_count() as i64);
        snap.add_counter("store.jrnl.appends", self.shared.journal.append_count());
        snap.add_counter(
            "store.jrnl.checkpoints",
            self.shared.journal.checkpoint_count(),
        );
        snap.add_counter(
            "store.jrnl.replayed",
            c.journal_replayed.load(Ordering::Relaxed),
        );
        snap.add_gauge(
            "store.jrnl.used_bytes",
            self.shared.journal.used_bytes() as i64,
        );
        snap
    }

    /// Acquires every stripe lock, quiescing all stripe I/O. Safe against
    /// deadlock because stripe operations hold at most one stripe lock at
    /// a time and the locks are taken here in index order.
    fn lock_all_stripes(&self) -> Vec<MutexGuard<'_, ()>> {
        self.shared
            .stripe_locks
            .iter()
            .map(|l| l.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
            .collect()
    }

    // ------------------------------------------------------------------
    // Failure surface
    // ------------------------------------------------------------------

    /// Declares device `dev` failed: the backing file is deleted and every
    /// sector of the device is treated as erased until repair.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Device`] for out-of-range indices.
    pub fn fail_device(&self, dev: usize) -> Result<(), Error> {
        if dev >= self.shared.geometry.n {
            return Err(Error::Device(format!(
                "device {dev} out of range (n={})",
                self.shared.geometry.n
            )));
        }
        // Quiesce all stripe I/O: removing the file mid write-back would
        // abort a write half-applied, leaving checksum-valid cells whose
        // parity no longer matches.
        let _all = self.lock_all_stripes();
        self.shared.devices.remove(dev)?;
        self.shared.integrity.update_health(|h| {
            h.devices[dev] = DeviceState::Failed;
            h.bad_sectors.retain(|&(_, _, d)| d != dev);
        });
        self.shared.integrity.persist()
    }

    /// Corrupts `len` consecutive sectors of `dev` starting at `(stripe,
    /// row)` by flipping bits on disk — a latent sector error / burst. The
    /// checksum table is deliberately left stale so the damage is only
    /// *detected* when a read or scrub verifies the sectors.
    ///
    /// # Errors
    ///
    /// Out-of-range coordinates or a failed device are rejected.
    pub fn corrupt_sectors(
        &self,
        dev: usize,
        stripe: usize,
        row: usize,
        len: usize,
    ) -> Result<(), Error> {
        let geom = &self.shared.geometry;
        let stripes = self.shared.meta.stripes;
        if dev >= geom.n || stripe >= stripes || row + len > geom.r {
            return Err(Error::OutOfRange(format!(
                "burst dev={dev} stripe={stripe} rows {row}..{} outside {}x{}x{}",
                row + len,
                stripes,
                geom.r,
                geom.n
            )));
        }
        let _guard = self.lock_stripe(stripe);
        let mut buf = vec![0u8; self.shared.meta.symbol];
        for k in row..row + len {
            match self.shared.devices.read_sector(dev, stripe, k, &mut buf)? {
                SectorRead::Missing => {
                    return Err(Error::Device(format!("device {dev} has no backing file")))
                }
                SectorRead::Ok => {}
            }
            for b in buf.iter_mut() {
                *b ^= 0xA5;
            }
            // check: persist-ok fault injection: deliberately un-journaled damage
            self.shared.devices.write_sector(dev, stripe, k, &buf)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Reads `len` bytes starting at logical byte `offset`, transparently
    /// reconstructing sectors lost to failed devices or latent damage.
    ///
    /// # Errors
    ///
    /// * [`Error::OutOfRange`] if the span exceeds capacity;
    /// * [`Error::Unrecoverable`] if a needed stripe carries more damage
    ///   than the codec's coverage.
    pub fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, Error> {
        let span = self.shared.blocks.block_span(offset, len)?;
        let mut out = vec![0u8; len];
        let per = self.blocks_per_stripe();
        let mut block = span.start;
        while block < span.end {
            let stripe = block / per;
            let stripe_end = ((stripe + 1) * per).min(span.end);
            self.read_stripe_blocks(stripe, block..stripe_end, offset, &mut out)?;
            block = stripe_end;
        }
        Ok(out)
    }

    /// Copies the overlap of `block` with the request window into `out`.
    pub(crate) fn copy_block(&self, block: usize, cell_data: &[u8], offset: u64, out: &mut [u8]) {
        let sym = self.block_size() as u64;
        let block_start = block as u64 * sym;
        let req_end = offset + out.len() as u64;
        let from = offset.max(block_start);
        let to = req_end.min(block_start + sym);
        let src = &cell_data[(from - block_start) as usize..(to - block_start) as usize];
        out[(from - offset) as usize..(to - offset) as usize].copy_from_slice(src);
    }

    fn read_stripe_blocks(
        &self,
        stripe_idx: usize,
        blocks: std::ops::Range<usize>,
        offset: u64,
        out: &mut [u8],
    ) -> Result<(), Error> {
        let _guard = self.lock_stripe(stripe_idx);
        self.read_stripe_blocks_locked(stripe_idx, blocks, offset, out)
    }

    /// [`read_stripe_blocks`](Self::read_stripe_blocks) minus the lock
    /// acquisition — the batched submit path holds each stripe lock
    /// once across many ops and calls this per read fragment.
    ///
    /// Callers must hold the stripe lock.
    pub(crate) fn read_stripe_blocks_locked(
        &self,
        stripe_idx: usize,
        blocks: std::ops::Range<usize>,
        offset: u64,
        out: &mut [u8],
    ) -> Result<(), Error> {
        let sh = &self.shared;
        let devices = sh.integrity.device_states();

        // Fast path: every wanted sector reads back and verifies.
        let mut clean: Vec<(usize, Vec<u8>)> = Vec::with_capacity(blocks.len());
        let mut degraded = false;
        for block in blocks.clone() {
            let loc = sh.blocks.locate(block)?;
            let (row, dev) = loc.cell;
            if devices[dev] != DeviceState::Healthy {
                degraded = true;
                break;
            }
            let mut buf = vec![0u8; sh.meta.symbol];
            match sh.devices.read_sector(dev, stripe_idx, row, &mut buf)? {
                SectorRead::Ok if sh.integrity.verify(stripe_idx, row, dev, &buf) => {
                    clean.push((block, buf));
                }
                _ => {
                    degraded = true;
                    break;
                }
            }
        }
        if !degraded {
            for (block, buf) in clean {
                self.copy_block(block, &buf, offset, out);
            }
            return Ok(());
        }

        // Degraded path: assemble the stripe's full erasure set and let the
        // codec's planner reconstruct exactly the wanted cells.
        let (mut stripe, erased) = self.load_stripe_degraded(stripe_idx)?;
        let wanted: Vec<CellIdx> = blocks
            .clone()
            .map(|b| sh.blocks.locate(b).map(|l| l.cell))
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .filter(|&c| erased.contains(c))
            .collect();
        if !wanted.is_empty() {
            let plan = sh
                .codec
                .plan_recover(&erased, &wanted)
                .map_err(|e| self.unrecoverable(stripe_idx, &erased, e))?;
            sh.codec.apply(&plan, &mut stripe)?;
            sh.counters.count_recover();
        }
        for block in blocks {
            let (row, dev) = sh.blocks.locate(block)?.cell;
            let cell = stripe.cell((row, dev)).to_vec();
            self.copy_block(block, &cell, offset, out);
        }
        Ok(())
    }

    pub(crate) fn unrecoverable(&self, stripe: usize, erased: &ErasureSet, e: CodeError) -> Error {
        match e {
            CodeError::Unrecoverable(_) => Error::Unrecoverable {
                stripe,
                erased: erased.cells().to_vec(),
            },
            other => Error::Code(other),
        }
    }

    /// Reads the full stripe grid from disk, treating non-healthy devices,
    /// missing files, and checksum mismatches as erasures. Erased cells
    /// are zeroed; newly discovered damage is recorded in the health map.
    ///
    /// Callers must hold the stripe lock.
    pub(crate) fn load_stripe_degraded(
        &self,
        stripe_idx: usize,
    ) -> Result<(StripeBuf, ErasureSet), Error> {
        let sh = &self.shared;
        let geom = &sh.geometry;
        let mut stripe = StripeBuf::new(geom.r, geom.n, sh.meta.symbol)?;
        let devices = sh.integrity.device_states();
        let mut erased: Vec<CellIdx> = Vec::new();
        let mut newly_bad: Vec<(usize, usize, usize)> = Vec::new();
        for (dev, &state) in devices.iter().enumerate() {
            let dead = state != DeviceState::Healthy;
            for row in 0..geom.r {
                if dead {
                    erased.push((row, dev));
                    continue;
                }
                let buf = stripe.cell_mut((row, dev));
                match sh.devices.read_sector(dev, stripe_idx, row, buf)? {
                    SectorRead::Missing => erased.push((row, dev)),
                    SectorRead::Ok => {
                        if !sh.integrity.verify(stripe_idx, row, dev, buf) {
                            erased.push((row, dev));
                            if !sh.integrity.is_recorded_bad((stripe_idx, row, dev)) {
                                newly_bad.push((stripe_idx, row, dev));
                            }
                        }
                    }
                }
            }
        }
        stripe.erase(&erased);
        if !newly_bad.is_empty() {
            sh.integrity
                .update_health(|h| h.bad_sectors.extend(newly_bad));
        }
        Ok((stripe, ErasureSet::new(erased)))
    }

    /// Loads the stripe and, when anything was erased, restores every
    /// lost cell via a full recovery plan — the shape the write paths
    /// need before patching (parity deltas are computed against a
    /// consistent stripe). Returns the restored buffer plus the set
    /// that had been erased (its members now hold reconstructed
    /// contents).
    ///
    /// Callers must hold the stripe lock.
    pub(crate) fn load_stripe_restored(
        &self,
        stripe_idx: usize,
    ) -> Result<(StripeBuf, ErasureSet), Error> {
        let sh = &self.shared;
        let (mut stripe, erased) = self.load_stripe_degraded(stripe_idx)?;
        if !erased.is_empty() {
            let plan = sh
                .codec
                .plan(&erased)
                .map_err(|e| self.unrecoverable(stripe_idx, &erased, e))?;
            sh.codec.apply(&plan, &mut stripe)?;
            sh.counters.count_recover();
        }
        Ok((stripe, erased))
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Writes `data` at logical byte `offset`. Partial blocks are merged
    /// read-modify-write; dirty blocks are batched per stripe and each
    /// stripe takes either the full-re-encode or the parity-delta path.
    ///
    /// # Errors
    ///
    /// * [`Error::OutOfRange`] if the span exceeds capacity;
    /// * [`Error::Unrecoverable`] when writing through a stripe whose
    ///   existing damage exceeds coverage.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> Result<WriteReport, Error> {
        let span = self.shared.blocks.block_span(offset, data.len())?;
        let mut report = WriteReport::default();
        if data.is_empty() {
            return Ok(report);
        }
        let per = self.blocks_per_stripe();
        let mut block = span.start;
        while block < span.end {
            let stripe = block / per;
            let stripe_end = ((stripe + 1) * per).min(span.end);
            self.write_stripe_blocks(stripe, block..stripe_end, offset, data, &mut report)?;
            block = stripe_end;
        }
        self.shared.integrity.persist()?;
        Ok(report)
    }

    /// The byte window of `block` that overlaps the write request, as
    /// (slice of incoming data, start offset within the block).
    pub(crate) fn incoming_for_block<'d>(
        &self,
        block: usize,
        offset: u64,
        data: &'d [u8],
    ) -> (&'d [u8], usize) {
        let sym = self.block_size() as u64;
        let block_start = block as u64 * sym;
        let req_end = offset + data.len() as u64;
        let from = offset.max(block_start);
        let to = req_end.min(block_start + sym);
        (
            &data[(from - offset) as usize..(to - offset) as usize],
            (from - block_start) as usize,
        )
    }

    fn write_stripe_blocks(
        &self,
        stripe_idx: usize,
        blocks: std::ops::Range<usize>,
        offset: u64,
        data: &[u8],
        report: &mut WriteReport,
    ) -> Result<(), Error> {
        let sh = &self.shared;
        let per = self.blocks_per_stripe();
        let sym = self.block_size();
        let _guard = self.lock_stripe(stripe_idx);
        report.stripes_touched += 1;
        report.blocks_written += blocks.len();

        let full_cover = blocks.len() == per
            && offset <= (blocks.start as u64) * sym as u64
            && offset + data.len() as u64 >= (blocks.end as u64) * sym as u64;

        if full_cover {
            // Full-stripe write: no old state needed, one re-encode.
            let geom = &sh.geometry;
            let mut stripe = StripeBuf::new(geom.r, geom.n, sym)?;
            let start = (blocks.start as u64 * sym as u64 - offset) as usize;
            stripe.write_cells(&geom.data_cells, &data[start..start + per * sym])?;
            sh.codec.encode(&mut stripe)?;
            sh.counters.count_encode();
            self.write_back_cells(stripe_idx, &stripe, None)?;
            report.full_stripe_encodes += 1;
            return Ok(());
        }

        // Partial write: load (and if degraded, first restore) the stripe.
        let (mut stripe, erased) = self.load_stripe_restored(stripe_idx)?;
        let mut touched: std::collections::BTreeSet<CellIdx> = std::collections::BTreeSet::new();
        for block in blocks {
            let loc = sh.blocks.locate(block)?;
            let (incoming, at) = self.incoming_for_block(block, offset, data);
            let mut contents = stripe.cell(loc.cell).to_vec();
            contents[at..at + incoming.len()].copy_from_slice(incoming);
            let patched = sh.codec.update(&mut stripe, loc.cell, &contents)?;
            sh.counters.count_update();
            report.delta_updates += 1;
            report.parity_sectors_patched += patched.len();
            touched.insert(loc.cell);
            touched.extend(patched);
        }
        // Previously-erased cells were reconstructed above; rewriting them
        // heals latent damage on writable devices for free.
        touched.extend(erased.iter());
        let written = self.write_back_cells(stripe_idx, &stripe, Some(&touched))?;
        report.sectors_healed += erased.iter().filter(|c| written.contains(c)).count();
        Ok(())
    }

    /// Writes stripe cells to disk and records their checksums, returning
    /// the cells actually written. `only` restricts to a subset (None =
    /// every cell). Only `Failed` devices are skipped (their contents live
    /// on implicitly through parity); `Rebuilding` replacements *must* be
    /// written, otherwise a write landing on a stripe the repair pass has
    /// already rebuilt would be lost when the device is promoted back to
    /// healthy. Rewritten cells are removed from the bad-sector map.
    ///
    /// This is the journaled commit path: the post-image of every cell
    /// about to be written is appended (and by default fsync'd) to the
    /// write-ahead journal **before** the first in-place sector write,
    /// and the commit guard is held until the last one — so a crash at
    /// any instant leaves either an un-started commit (old stripe
    /// intact) or a replayable record. Every other in-place stripe
    /// write in this crate must route through here (enforced by the
    /// `persist-ordering` lint).
    pub(crate) fn write_back_cells(
        &self,
        stripe_idx: usize,
        stripe: &StripeBuf,
        only: Option<&std::collections::BTreeSet<CellIdx>>,
    ) -> Result<std::collections::BTreeSet<CellIdx>, Error> {
        let sh = &self.shared;
        let targets = self.write_back_targets(stripe, only);
        let (record, encode) = self.journal_cells(stripe, only);
        // Journal-first: intent durable before any in-place mutation.
        let _commit = sh.journal.commit(stripe_idx, &record, encode, || {
            sh.devices.sync()?;
            sh.integrity.persist()
        })?;
        self.apply_write_back(stripe_idx, &targets)
    }

    /// The journal payload of one stripe commit. A partial commit
    /// journals its exact write-back targets as literal post-images. A
    /// full-stripe commit (`only == None`) journals a **data image** —
    /// only the data cells, parity recomputed at replay — cutting the
    /// record to `k/n` of the stripe and with it the bytes the commit
    /// fsync has to flush. Data cells on `Failed` devices are included
    /// (the in-memory stripe knows their contents even when no disk
    /// does), so replay re-encodes from a complete image.
    pub(crate) fn journal_cells<'s>(
        &self,
        stripe: &'s StripeBuf,
        only: Option<&std::collections::BTreeSet<CellIdx>>,
    ) -> (Vec<(CellIdx, &'s [u8])>, bool) {
        if only.is_some() {
            return (self.write_back_targets(stripe, only), false);
        }
        let cells = self
            .shared
            .geometry
            .data_cells
            .iter()
            .map(|&cell| (cell, stripe.cell(cell)))
            .collect();
        (cells, true)
    }

    /// The cells one stripe commit will persist: every non-`Failed`
    /// device's cell, optionally restricted to `only`. This is both
    /// the journal record's payload and the write-back's work list —
    /// computed once so the two can never disagree.
    pub(crate) fn write_back_targets<'s>(
        &self,
        stripe: &'s StripeBuf,
        only: Option<&std::collections::BTreeSet<CellIdx>>,
    ) -> Vec<(CellIdx, &'s [u8])> {
        let sh = &self.shared;
        let devices = sh.integrity.device_states();
        let mut targets: Vec<(CellIdx, &[u8])> = Vec::new();
        for row in 0..sh.geometry.r {
            for (dev, &state) in devices.iter().enumerate() {
                if let Some(set) = only {
                    if !set.contains(&(row, dev)) {
                        continue;
                    }
                }
                if state == DeviceState::Failed {
                    continue;
                }
                targets.push(((row, dev), stripe.cell((row, dev))));
            }
        }
        targets
    }

    /// The in-place leg of a commit: raw sector writes plus checksum
    /// recording, after the journal record covering `targets` is
    /// durable. Callers arrive here only through [`Self::write_back_cells`]
    /// or the batch group commit (both journal-first).
    pub(crate) fn apply_write_back(
        &self,
        stripe_idx: usize,
        targets: &[(CellIdx, &[u8])],
    ) -> Result<std::collections::BTreeSet<CellIdx>, Error> {
        let sh = &self.shared;
        let mut written: std::collections::BTreeSet<CellIdx> = std::collections::BTreeSet::new();
        for &((row, dev), cell) in targets {
            sh.devices.write_sector(dev, stripe_idx, row, cell)?;
            sh.integrity.record(stripe_idx, row, dev, cell);
            written.insert((row, dev));
        }
        sh.integrity.update_health(|h| {
            for &(row, dev) in &written {
                h.bad_sectors.remove(&(stripe_idx, row, dev));
            }
        });
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stair-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_opts() -> StoreOptions {
        StoreOptions {
            code: "stair:8,4,2,1-1-2".parse().unwrap(),
            symbol: 64,
            stripes: 6,
        }
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn create_open_reports_geometry() {
        let dir = tmpdir("geom");
        let store = StripeStore::create(&dir, &small_opts()).unwrap();
        // 8×4 grid, m=2, s=4 → 4·6−4 = 20 data blocks per stripe.
        assert_eq!(store.blocks_per_stripe(), 20);
        assert_eq!(store.capacity(), 20 * 6 * 64);
        drop(store);
        let store = StripeStore::open(&dir).unwrap();
        assert_eq!(store.stripe_count(), 6);
        assert_eq!(store.codec_spec().to_string(), "stair:8,4,2,1-1-2");
        assert!(store.status().failed_devices.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_validates_scalar_geometry() {
        // Regression: zero symbol/stripes must fail at creation time, not
        // only when the superblock is reparsed on open.
        for (symbol, stripes) in [(0usize, 6usize), (64, 0)] {
            let dir = tmpdir(&format!("badgeom-{symbol}-{stripes}"));
            let opts = StoreOptions {
                symbol,
                stripes,
                ..small_opts()
            };
            match StripeStore::create(&dir, &opts) {
                Err(Error::Meta(_)) => {}
                Err(other) => panic!("expected Meta error, got {other:?}"),
                Ok(_) => panic!("degenerate geometry must not create"),
            }
            // Nothing may have been created on disk.
            assert!(!dir.exists(), "failed create must not leave files");
        }
    }

    #[test]
    fn write_read_round_trip_clean() {
        let dir = tmpdir("rt");
        let store = StripeStore::create(&dir, &small_opts()).unwrap();
        let payload = pattern(store.capacity() as usize, 3);
        let report = store.write_at(0, &payload).unwrap();
        assert_eq!(report.full_stripe_encodes, 6);
        assert_eq!(report.delta_updates, 0);
        assert_eq!(store.read_at(0, payload.len()).unwrap(), payload);
        // Unaligned window.
        assert_eq!(
            store.read_at(100, 999).unwrap(),
            payload[100..1099].to_vec()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn small_write_takes_delta_path_and_persists() {
        let dir = tmpdir("delta");
        let store = StripeStore::create(&dir, &small_opts()).unwrap();
        let base = pattern(store.capacity() as usize, 7);
        store.write_at(0, &base).unwrap();
        // Overwrite 100 bytes straddling a block boundary.
        let patch = pattern(100, 99);
        let report = store.write_at(30, &patch).unwrap();
        assert_eq!(report.full_stripe_encodes, 0);
        assert!(report.delta_updates >= 2);
        assert!(report.parity_sectors_patched > 0);
        let mut expected = base.clone();
        expected[30..130].copy_from_slice(&patch);
        assert_eq!(store.read_at(0, expected.len()).unwrap(), expected);
        // Reopen: changes survived.
        drop(store);
        let store = StripeStore::open(&dir).unwrap();
        assert_eq!(store.read_at(0, expected.len()).unwrap(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degraded_read_after_device_failures_and_burst() {
        let dir = tmpdir("degraded");
        let store = StripeStore::create(&dir, &small_opts()).unwrap();
        let payload = pattern(store.capacity() as usize, 11);
        store.write_at(0, &payload).unwrap();
        // Kill m = 2 devices and corrupt a 2-sector burst elsewhere.
        store.fail_device(1).unwrap();
        store.fail_device(5).unwrap();
        store.corrupt_sectors(3, 2, 2, 2).unwrap();
        assert_eq!(store.read_at(0, payload.len()).unwrap(), payload);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writes_continue_through_degraded_stripes() {
        let dir = tmpdir("degwrite");
        let store = StripeStore::create(&dir, &small_opts()).unwrap();
        let payload = pattern(store.capacity() as usize, 13);
        store.write_at(0, &payload).unwrap();
        store.fail_device(0).unwrap();
        let patch = pattern(64, 42);
        store.write_at(64, &patch).unwrap(); // block 1 of stripe 0
        let mut expected = payload.clone();
        expected[64..128].copy_from_slice(&patch);
        assert_eq!(store.read_at(0, expected.len()).unwrap(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damage_beyond_coverage_is_reported() {
        let dir = tmpdir("beyond");
        let store = StripeStore::create(&dir, &small_opts()).unwrap();
        let payload = pattern(store.capacity() as usize, 17);
        store.write_at(0, &payload).unwrap();
        // m = 2 covers two failed devices; a third is fatal.
        store.fail_device(0).unwrap();
        store.fail_device(1).unwrap();
        store.fail_device(2).unwrap();
        match store.read_at(0, 64) {
            Err(Error::Unrecoverable { stripe, .. }) => assert_eq!(stripe, 0),
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range_rejected() {
        let dir = tmpdir("oor");
        let store = StripeStore::create(&dir, &small_opts()).unwrap();
        assert!(matches!(
            store.read_at(store.capacity(), 1),
            Err(Error::OutOfRange(_))
        ));
        assert!(matches!(
            store.write_at(store.capacity() - 1, &[0, 0]),
            Err(Error::OutOfRange(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_write_boundaries_at_exact_capacity_and_zero_length() {
        let dir = tmpdir("bounds");
        let store = StripeStore::create(&dir, &small_opts()).unwrap();
        let cap = store.capacity() as usize;
        let payload = pattern(cap, 23);
        store.write_at(0, &payload).unwrap();
        // Exact-capacity read and write succeed.
        assert_eq!(store.read_at(0, cap).unwrap(), payload);
        let full = pattern(cap, 24);
        store.write_at(0, &full).unwrap();
        assert_eq!(store.read_at(0, cap).unwrap(), full);
        // Reads/writes ending exactly at capacity succeed.
        let tail = pattern(100, 25);
        store.write_at(store.capacity() - 100, &tail).unwrap();
        assert_eq!(store.read_at(store.capacity() - 100, 100).unwrap(), tail);
        // Zero-length I/O at 0, mid-store, and exactly at capacity is a
        // no-op, not an error.
        for off in [0, 77, store.capacity()] {
            assert_eq!(store.read_at(off, 0).unwrap(), Vec::<u8>::new());
            let report = store.write_at(off, &[]).unwrap();
            assert_eq!(report, WriteReport::default());
        }
        // One byte past capacity is out of range even for len 1.
        assert!(store.read_at(store.capacity(), 1).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
