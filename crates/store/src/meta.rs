//! The store superblock: a small plain-text file pinning the codec
//! descriptor, sector size, and stripe count that every other on-disk
//! structure is interpreted against.
//!
//! The superblock is versioned. `v3` adds crash-consistency state: the
//! journal segment capacity and a `clean_shutdown` flag that records
//! whether the last close checkpointed the journal. `v2` records the
//! codec as a [`CodecSpec`] string, so [`crate::StripeStore::open`] can
//! rebuild any supported erasure code; legacy `v1` superblocks (which
//! spelled out the STAIR parameters as separate `n`/`r`/`m`/`e` keys)
//! still parse and map onto a `stair:` spec. Both older versions load
//! with journal defaults (and `clean_shutdown = true`: a pre-journal
//! store has no journal to have left dirty).

use std::fs;
use std::path::Path;
use std::str::FromStr;

use stair_code::CodecSpec;

use crate::journal::DEFAULT_JOURNAL_SEGMENT;
use crate::Error;

/// File name of the superblock inside a store directory.
pub const META_FILE: &str = "store.meta";
/// Magic first line; bump the version when the layout changes.
pub const META_MAGIC: &str = "stair-store v3";
/// Previous superblock version, still accepted on load.
pub const META_MAGIC_V2: &str = "stair-store v2";
/// Oldest superblock version, still accepted on load.
pub const META_MAGIC_V1: &str = "stair-store v1";

/// The immutable shape of a store (plus the two mutable
/// crash-consistency fields the v3 superblock tracks).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreMeta {
    /// Which erasure code protects the stripes.
    pub codec: CodecSpec,
    /// Bytes per sector; also the logical block size.
    pub symbol: usize,
    /// Number of stripes in the store.
    pub stripes: usize,
    /// Capacity of the write-ahead journal segment in bytes.
    pub journal_segment: u64,
    /// Whether the last close checkpointed the journal (rewritten to
    /// `false` while the store is open, `true` on clean shutdown).
    pub clean_shutdown: bool,
}

impl StoreMeta {
    /// Validates the scalar fields (the codec spec itself is validated by
    /// constructing the codec — see [`crate::build_codec`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Meta`] if `symbol` or `stripes` is zero.
    pub fn validate(&self) -> Result<(), Error> {
        if self.symbol == 0 || self.stripes == 0 {
            return Err(Error::Meta("symbol and stripes must be positive".into()));
        }
        Ok(())
    }

    /// Serializes to the superblock text format (always the current
    /// `v3` layout; older versions are read-compatible only).
    pub fn to_text(&self) -> String {
        format!(
            "{META_MAGIC}\ncodec {}\nsymbol {}\nstripes {}\njournal_segment {}\nclean_shutdown {}\n",
            self.codec,
            self.symbol,
            self.stripes,
            self.journal_segment,
            u8::from(self.clean_shutdown),
        )
    }

    /// Parses either superblock version and validates it end to end
    /// (including building the codec, so a parsed superblock is always an
    /// openable one).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Meta`] for malformed text and [`Error::Code`] for
    /// specs naming impossible codecs.
    pub fn parse(text: &str) -> Result<Self, Error> {
        let (meta, _codec) = Self::parse_with_codec(text)?;
        Ok(meta)
    }

    /// Like [`StoreMeta::parse`], but hands back the codec the validation
    /// pass built, so callers that need a live codec (the store's `open`)
    /// do not construct it twice.
    pub(crate) fn parse_with_codec(
        text: &str,
    ) -> Result<(Self, Box<dyn stair_code::ErasureCode>), Error> {
        let mut lines = text.lines();
        let magic = lines.next().unwrap_or_default();
        let meta = match magic {
            META_MAGIC => Self::parse_v2v3(lines, true),
            META_MAGIC_V2 => Self::parse_v2v3(lines, false),
            META_MAGIC_V1 => Self::parse_v1(lines),
            other => Err(Error::Meta(format!(
                "bad magic `{other}`, expected `{META_MAGIC}` (or legacy `{META_MAGIC_V2}` / \
                 `{META_MAGIC_V1}`)"
            ))),
        }?;
        meta.validate()?;
        let codec = crate::build_codec(&meta.codec)?; // must be constructible
        Ok((meta, codec))
    }

    /// Shared v2/v3 body parser: v3 accepts (and defaults) the journal
    /// keys, v2 rejects them — a v2 superblock with journal state is a
    /// version-tagging bug, not a store to guess about.
    fn parse_v2v3<'a>(lines: impl Iterator<Item = &'a str>, v3: bool) -> Result<Self, Error> {
        let mut codec = None;
        let mut symbol = None;
        let mut stripes = None;
        let mut journal_segment = None;
        let mut clean_shutdown = None;
        for (key, value) in fields(lines)? {
            match key.as_str() {
                "codec" => {
                    codec = Some(CodecSpec::from_str(&value).map_err(Error::from)?);
                }
                "symbol" => symbol = Some(parse_usize(&key, &value)?),
                "stripes" => stripes = Some(parse_usize(&key, &value)?),
                "journal_segment" if v3 => {
                    journal_segment = Some(parse_usize(&key, &value)? as u64);
                }
                "clean_shutdown" if v3 => {
                    clean_shutdown = Some(match value.as_str() {
                        "0" => false,
                        "1" => true,
                        other => {
                            return Err(Error::Meta(format!(
                                "bad flag `{other}` for `clean_shutdown` (want 0 or 1)"
                            )))
                        }
                    });
                }
                _ => return Err(Error::Meta(format!("unknown key `{key}`"))),
            }
        }
        Ok(StoreMeta {
            codec: codec.ok_or_else(|| missing("codec"))?,
            symbol: symbol.ok_or_else(|| missing("symbol"))?,
            stripes: stripes.ok_or_else(|| missing("stripes"))?,
            journal_segment: journal_segment.unwrap_or(DEFAULT_JOURNAL_SEGMENT),
            clean_shutdown: clean_shutdown.unwrap_or(true),
        })
    }

    /// Legacy v1 superblocks are always STAIR-coded.
    fn parse_v1<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Self, Error> {
        let mut n = None;
        let mut r = None;
        let mut m = None;
        let mut e: Option<Vec<usize>> = None;
        let mut symbol = None;
        let mut stripes = None;
        for (key, value) in fields(lines)? {
            match key.as_str() {
                "n" => n = Some(parse_usize(&key, &value)?),
                "r" => r = Some(parse_usize(&key, &value)?),
                "m" => m = Some(parse_usize(&key, &value)?),
                "symbol" => symbol = Some(parse_usize(&key, &value)?),
                "stripes" => stripes = Some(parse_usize(&key, &value)?),
                "e" => {
                    let parsed: Result<Vec<usize>, Error> = value
                        .split(',')
                        .map(|x| parse_usize("e", x.trim()))
                        .collect();
                    e = Some(parsed?);
                }
                _ => return Err(Error::Meta(format!("unknown key `{key}`"))),
            }
        }
        Ok(StoreMeta {
            codec: CodecSpec::Stair {
                n: n.ok_or_else(|| missing("n"))?,
                r: r.ok_or_else(|| missing("r"))?,
                m: m.ok_or_else(|| missing("m"))?,
                e: e.ok_or_else(|| missing("e"))?,
            },
            symbol: symbol.ok_or_else(|| missing("symbol"))?,
            stripes: stripes.ok_or_else(|| missing("stripes"))?,
            journal_segment: DEFAULT_JOURNAL_SEGMENT,
            clean_shutdown: true,
        })
    }

    /// Writes the superblock into `dir` — atomically (temp file +
    /// rename), because v3 rewrites it on every open/close transition
    /// and a torn superblock would brick the store.
    pub fn save(&self, dir: &Path) -> Result<(), Error> {
        crate::integrity::write_atomic(dir, META_FILE, self.to_text().as_bytes())
    }

    /// Loads and validates the superblock from `dir`.
    pub fn load(dir: &Path) -> Result<Self, Error> {
        let (meta, _codec) = Self::load_with_codec(dir)?;
        Ok(meta)
    }

    /// Loads the superblock and the codec it names in one pass.
    pub(crate) fn load_with_codec(
        dir: &Path,
    ) -> Result<(Self, Box<dyn stair_code::ErasureCode>), Error> {
        let path = dir.join(META_FILE);
        let text = fs::read_to_string(&path)
            .map_err(|e| Error::Meta(format!("cannot read {}: {e}", path.display())))?;
        Self::parse_with_codec(&text)
    }
}

fn parse_usize(key: &str, value: &str) -> Result<usize, Error> {
    value
        .parse::<usize>()
        .map_err(|_| Error::Meta(format!("bad integer `{value}` for `{key}`")))
}

fn missing(field: &str) -> Error {
    Error::Meta(format!("missing field `{field}`"))
}

fn fields<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Vec<(String, String)>, Error> {
    let mut out = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once(' ')
            .ok_or_else(|| Error::Meta(format!("malformed line `{line}`")))?;
        out.push((key.to_string(), value.to_string()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> StoreMeta {
        StoreMeta {
            codec: CodecSpec::Stair {
                n: 8,
                r: 4,
                m: 2,
                e: vec![1, 1, 2],
            },
            symbol: 512,
            stripes: 16,
            journal_segment: DEFAULT_JOURNAL_SEGMENT,
            clean_shutdown: true,
        }
    }

    #[test]
    fn text_round_trip() {
        let m = meta();
        assert_eq!(StoreMeta::parse(&m.to_text()).unwrap(), m);
        let sd = StoreMeta {
            codec: "sd:6,4,1,2".parse().unwrap(),
            ..meta()
        };
        assert_eq!(StoreMeta::parse(&sd.to_text()).unwrap(), sd);
    }

    #[test]
    fn legacy_v1_superblocks_parse_as_stair() {
        let text = "stair-store v1\nn 8\nr 4\nm 2\ne 1,1,2\nsymbol 512\nstripes 16\n";
        assert_eq!(StoreMeta::parse(text).unwrap(), meta());
    }

    #[test]
    fn v2_superblocks_parse_with_journal_defaults() {
        let text = "stair-store v2\ncodec stair:8,4,2,1-1-2\nsymbol 512\nstripes 16\n";
        assert_eq!(StoreMeta::parse(text).unwrap(), meta());
        // The journal keys are a v3 invention; a v2 superblock carrying
        // them is mis-tagged and must be rejected, not guessed at.
        let mixed = "stair-store v2\ncodec stair:8,4,2,1-1-2\nsymbol 512\nstripes 16\n\
                     clean_shutdown 1\n";
        assert!(StoreMeta::parse(mixed).is_err());
    }

    #[test]
    fn v3_journal_fields_round_trip() {
        let m = StoreMeta {
            journal_segment: 123_456,
            clean_shutdown: false,
            ..meta()
        };
        let text = m.to_text();
        assert!(text.starts_with("stair-store v3\n"));
        assert!(text.contains("journal_segment 123456\n"));
        assert!(text.contains("clean_shutdown 0\n"));
        assert_eq!(StoreMeta::parse(&text).unwrap(), m);
        // Bad flag values are rejected.
        let bad = text.replace("clean_shutdown 0", "clean_shutdown yes");
        assert!(StoreMeta::parse(&bad).is_err());
    }

    #[test]
    fn rejects_bad_magic_and_bad_geometry() {
        assert!(matches!(
            StoreMeta::parse("nonsense\ncodec rs:4,2,1"),
            Err(Error::Meta(_))
        ));
        // e longer than feasible: codec construction must reject it.
        let mut bad = meta();
        bad.codec = CodecSpec::Stair {
            n: 8,
            r: 4,
            m: 2,
            e: vec![100],
        };
        assert!(StoreMeta::parse(&bad.to_text()).is_err());
    }

    #[test]
    fn rejects_zero_symbol_or_stripes() {
        for (symbol, stripes) in [(0, 16), (512, 0)] {
            let bad = StoreMeta {
                symbol,
                stripes,
                ..meta()
            };
            assert!(bad.validate().is_err());
            assert!(StoreMeta::parse(&bad.to_text()).is_err());
        }
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("stair-meta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = meta();
        m.save(&dir).unwrap();
        assert_eq!(StoreMeta::load(&dir).unwrap(), m);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
