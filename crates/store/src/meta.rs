//! The store superblock: a small plain-text file pinning the geometry
//! (`n`, `r`, `m`, `e`, sector size, stripe count) that every other
//! on-disk structure is interpreted against.

use std::fs;
use std::path::Path;

use stair::Config;

use crate::Error;

/// File name of the superblock inside a store directory.
pub const META_FILE: &str = "store.meta";
/// Magic first line; bump the version when the layout changes.
pub const MAGIC: &str = "stair-store v1";

/// The immutable geometry of a store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreMeta {
    /// Devices per stripe (`n`).
    pub n: usize,
    /// Sectors per chunk (`r`).
    pub r: usize,
    /// Tolerated whole-device failures (`m`).
    pub m: usize,
    /// Sector-failure coverage vector (`e`, non-decreasing).
    pub e: Vec<usize>,
    /// Bytes per sector; also the logical block size.
    pub symbol: usize,
    /// Number of stripes in the store.
    pub stripes: usize,
}

impl StoreMeta {
    /// Validates the geometry by constructing the codec configuration.
    pub fn config(&self) -> Result<Config, Error> {
        Config::new(self.n, self.r, self.m, &self.e).map_err(Error::from)
    }

    /// Serializes to the superblock text format.
    pub fn to_text(&self) -> String {
        let e: Vec<String> = self.e.iter().map(|x| x.to_string()).collect();
        format!(
            "{MAGIC}\nn {}\nr {}\nm {}\ne {}\nsymbol {}\nstripes {}\n",
            self.n,
            self.r,
            self.m,
            e.join(","),
            self.symbol,
            self.stripes
        )
    }

    /// Parses the superblock text format.
    pub fn parse(text: &str) -> Result<Self, Error> {
        let mut lines = text.lines();
        let magic = lines.next().unwrap_or_default();
        if magic != MAGIC {
            return Err(Error::Meta(format!(
                "bad magic `{magic}`, expected `{MAGIC}`"
            )));
        }
        let mut n = None;
        let mut r = None;
        let mut m = None;
        let mut e: Option<Vec<usize>> = None;
        let mut symbol = None;
        let mut stripes = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| Error::Meta(format!("malformed line `{line}`")))?;
            let parse_usize = |v: &str| {
                v.parse::<usize>()
                    .map_err(|_| Error::Meta(format!("bad integer `{v}` for `{key}`")))
            };
            match key {
                "n" => n = Some(parse_usize(value)?),
                "r" => r = Some(parse_usize(value)?),
                "m" => m = Some(parse_usize(value)?),
                "symbol" => symbol = Some(parse_usize(value)?),
                "stripes" => stripes = Some(parse_usize(value)?),
                "e" => {
                    let parsed: Result<Vec<usize>, Error> =
                        value.split(',').map(|x| parse_usize(x.trim())).collect();
                    e = Some(parsed?);
                }
                _ => return Err(Error::Meta(format!("unknown key `{key}`"))),
            }
        }
        let missing = |field: &str| Error::Meta(format!("missing field `{field}`"));
        let meta = StoreMeta {
            n: n.ok_or_else(|| missing("n"))?,
            r: r.ok_or_else(|| missing("r"))?,
            m: m.ok_or_else(|| missing("m"))?,
            e: e.ok_or_else(|| missing("e"))?,
            symbol: symbol.ok_or_else(|| missing("symbol"))?,
            stripes: stripes.ok_or_else(|| missing("stripes"))?,
        };
        if meta.symbol == 0 || meta.stripes == 0 {
            return Err(Error::Meta("symbol and stripes must be positive".into()));
        }
        meta.config()?; // validate (n, r, m, e) as a real STAIR configuration
        Ok(meta)
    }

    /// Writes the superblock into `dir`.
    pub fn save(&self, dir: &Path) -> Result<(), Error> {
        fs::write(dir.join(META_FILE), self.to_text()).map_err(Error::from)
    }

    /// Loads and validates the superblock from `dir`.
    pub fn load(dir: &Path) -> Result<Self, Error> {
        let path = dir.join(META_FILE);
        let text = fs::read_to_string(&path)
            .map_err(|e| Error::Meta(format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> StoreMeta {
        StoreMeta {
            n: 8,
            r: 4,
            m: 2,
            e: vec![1, 1, 2],
            symbol: 512,
            stripes: 16,
        }
    }

    #[test]
    fn text_round_trip() {
        let m = meta();
        assert_eq!(StoreMeta::parse(&m.to_text()).unwrap(), m);
    }

    #[test]
    fn rejects_bad_magic_and_bad_geometry() {
        assert!(matches!(
            StoreMeta::parse("nonsense\nn 8"),
            Err(Error::Meta(_))
        ));
        // e longer than feasible: Config::new must reject it.
        let mut bad = meta();
        bad.e = vec![100];
        assert!(StoreMeta::parse(&bad.to_text()).is_err());
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("stair-meta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = meta();
        m.save(&dir).unwrap();
        assert_eq!(StoreMeta::load(&dir).unwrap(), m);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
