//! Integrity state: the per-sector checksum table and the health record
//! (failed / rebuilding devices, known-bad sectors).
//!
//! Checksums are authoritative for *detection*: a sector whose stored
//! Fletcher-32 does not match its on-disk contents is treated as erased by
//! every read path. The health record is a cache of what detection has
//! already found (plus explicit failure declarations), so repair knows
//! what to rebuild without rescanning the world.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::checksum::fletcher32;
use crate::Error;

// Lock poisoning policy: every lock in this module is taken with
// `unwrap_or_else(PoisonError::into_inner)` instead of `unwrap()`. A
// poisoned lock only means some other thread panicked while holding it;
// propagating that panic would turn one crashed worker into a cascade
// through every thread serving the store (including a network server's
// whole worker pool). Continuing is sound here because this state is
// *detection* metadata with no cross-field invariants to break:
// checksum-table entries are single `u32` assignments (never observable
// half-written under the lock), and the worst a torn health update can
// leave behind is a stale or spurious bad-sector record — which makes a
// read treat the sector as erased and reconstruct it from parity, or a
// later scrub clear the record. Either way reads stay checksum-correct;
// poisoning can cost a reconstruction, never data integrity.

fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

fn mutex_lock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}

/// File name of the checksum table.
pub const CHECKSUM_FILE: &str = "checksums.bin";
/// File name of the health record.
pub const HEALTH_FILE: &str = "health.txt";

/// Lifecycle state of one device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceState {
    /// Serving I/O normally.
    Healthy,
    /// Declared failed; its backing file is gone.
    Failed,
    /// Replacement file attached; reconstruction in progress. Reads still
    /// treat its sectors as erased until repair finishes.
    Rebuilding,
}

/// A damaged sector coordinate: `(stripe, row, device)`.
pub type BadSector = (usize, usize, usize);

/// Mutable health state, persisted as `health.txt`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Health {
    /// Per-device lifecycle states.
    pub devices: Vec<DeviceState>,
    /// Sectors known damaged on otherwise-healthy devices.
    pub bad_sectors: BTreeSet<BadSector>,
}

impl Health {
    fn new(n: usize) -> Self {
        Health {
            devices: vec![DeviceState::Healthy; n],
            bad_sectors: BTreeSet::new(),
        }
    }

    fn to_text(&self) -> String {
        let mut out = String::new();
        for (j, state) in self.devices.iter().enumerate() {
            match state {
                DeviceState::Healthy => {}
                DeviceState::Failed => out.push_str(&format!("failed {j}\n")),
                DeviceState::Rebuilding => out.push_str(&format!("rebuilding {j}\n")),
            }
        }
        for &(stripe, row, dev) in &self.bad_sectors {
            out.push_str(&format!("bad {stripe} {row} {dev}\n"));
        }
        out
    }

    fn parse(text: &str, n: usize) -> Result<Self, Error> {
        let mut health = Health::new(n);
        for line in text.lines() {
            let fields: Vec<&str> = line.split_whitespace().collect();
            let parse = |v: &str| {
                v.parse::<usize>()
                    .map_err(|_| Error::Meta(format!("bad health line `{line}`")))
            };
            match fields.as_slice() {
                [] => {}
                ["failed", j] => {
                    let j = parse(j)?;
                    check_device(j, n)?;
                    health.devices[j] = DeviceState::Failed;
                }
                ["rebuilding", j] => {
                    let j = parse(j)?;
                    check_device(j, n)?;
                    health.devices[j] = DeviceState::Rebuilding;
                }
                ["bad", stripe, row, dev] => {
                    let dev = parse(dev)?;
                    check_device(dev, n)?;
                    health
                        .bad_sectors
                        .insert((parse(stripe)?, parse(row)?, dev));
                }
                _ => return Err(Error::Meta(format!("bad health line `{line}`"))),
            }
        }
        Ok(health)
    }
}

/// Writes `dir/name` via a temp file + rename, so readers never see a
/// half-written file (used for every small metadata file the store
/// rewrites in place: health, superblock).
pub(crate) fn write_atomic(dir: &Path, name: &str, contents: &[u8]) -> Result<(), Error> {
    let tmp = dir.join(format!("{name}.tmp"));
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, dir.join(name))?;
    Ok(())
}

fn check_device(j: usize, n: usize) -> Result<(), Error> {
    if j >= n {
        return Err(Error::Meta(format!("device {j} out of range (n={n})")));
    }
    Ok(())
}

/// The checksum table plus health record, with persistence.
pub struct Integrity {
    dir: PathBuf,
    n: usize,
    r: usize,
    /// `checksums[(stripe·r + row)·n + dev]`, guarding every stored sector.
    checksums: RwLock<Vec<u32>>,
    /// Table indices whose entries changed since the last persist; persist
    /// rewrites only these (positioned 4-byte writes), not the whole file.
    dirty: std::sync::Mutex<std::collections::BTreeSet<usize>>,
    /// Open handle on the checksum table file for positioned writes.
    table_file: std::fs::File,
    health: RwLock<Health>,
    /// Serializes [`Integrity::persist`] so concurrent foreground writes
    /// and repair/scrub passes never interleave file updates.
    persist_lock: std::sync::Mutex<()>,
}

impl Integrity {
    /// Builds a fresh table for a zero-filled store.
    pub fn create(
        dir: &Path,
        n: usize,
        r: usize,
        symbol: usize,
        stripes: usize,
    ) -> Result<Self, Error> {
        let zero_sum = fletcher32(&vec![0u8; symbol]);
        let checksums = vec![zero_sum; stripes * r * n];
        let mut raw = Vec::with_capacity(checksums.len() * 4);
        for sum in &checksums {
            raw.extend_from_slice(&sum.to_le_bytes());
        }
        write_atomic(dir, CHECKSUM_FILE, &raw)?;
        write_atomic(dir, HEALTH_FILE, Health::new(n).to_text().as_bytes())?;
        Self::load(dir, n, r, stripes)
    }

    /// Loads the table and health record from `dir`.
    pub fn load(dir: &Path, n: usize, r: usize, stripes: usize) -> Result<Self, Error> {
        let raw = fs::read(dir.join(CHECKSUM_FILE))
            .map_err(|e| Error::Meta(format!("cannot read {CHECKSUM_FILE}: {e}")))?;
        let expected = stripes * r * n * 4;
        if raw.len() != expected {
            return Err(Error::Meta(format!(
                "{CHECKSUM_FILE} is {} bytes, expected {expected}",
                raw.len()
            )));
        }
        let checksums: Vec<u32> = raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let table_file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(dir.join(CHECKSUM_FILE))?;
        let health_text = fs::read_to_string(dir.join(HEALTH_FILE)).unwrap_or_default();
        Ok(Integrity {
            dir: dir.to_path_buf(),
            n,
            r,
            checksums: RwLock::new(checksums),
            dirty: std::sync::Mutex::new(std::collections::BTreeSet::new()),
            table_file,
            health: RwLock::new(Health::parse(&health_text, n)?),
            persist_lock: std::sync::Mutex::new(()),
        })
    }

    fn index(&self, stripe: usize, row: usize, dev: usize) -> usize {
        (stripe * self.r + row) * self.n + dev
    }

    /// The stored checksum for a sector.
    pub fn expected(&self, stripe: usize, row: usize, dev: usize) -> u32 {
        read_lock(&self.checksums)[self.index(stripe, row, dev)]
    }

    /// Verifies `data` against the stored checksum.
    pub fn verify(&self, stripe: usize, row: usize, dev: usize, data: &[u8]) -> bool {
        fletcher32(data) == self.expected(stripe, row, dev)
    }

    /// Records the checksum of freshly written sector contents (persisted
    /// on the next [`Integrity::persist`]).
    pub fn record(&self, stripe: usize, row: usize, dev: usize, data: &[u8]) {
        let sum = fletcher32(data);
        let idx = self.index(stripe, row, dev);
        write_lock(&self.checksums)[idx] = sum;
        mutex_lock(&self.dirty).insert(idx);
    }

    /// Snapshot of the current health record (clones the bad-sector set;
    /// hot per-stripe paths should prefer [`Integrity::device_states`] /
    /// [`Integrity::is_recorded_bad`]).
    pub fn health(&self) -> Health {
        read_lock(&self.health).clone()
    }

    /// Per-device states only — cheap (`n` entries) for per-stripe paths.
    pub fn device_states(&self) -> Vec<DeviceState> {
        read_lock(&self.health).devices.clone()
    }

    /// Whether a sector is already recorded as bad, without cloning.
    pub fn is_recorded_bad(&self, key: BadSector) -> bool {
        read_lock(&self.health).bad_sectors.contains(&key)
    }

    /// Applies `f` to the health record and returns whether it changed.
    pub fn update_health(&self, f: impl FnOnce(&mut Health)) -> bool {
        let mut guard = write_lock(&self.health);
        let before = guard.clone();
        f(&mut guard);
        *guard != before
    }

    /// Persists dirty checksum entries (positioned 4-byte writes into the
    /// table file — O(entries changed), not O(store size)) and the health
    /// record (small; rewritten atomically via temp file + rename). The
    /// persist lock keeps concurrent callers from interleaving.
    pub fn persist(&self) -> Result<(), Error> {
        use std::os::unix::fs::FileExt;
        let _serial = mutex_lock(&self.persist_lock);
        let dirty: Vec<usize> = std::mem::take(&mut *mutex_lock(&self.dirty))
            .into_iter()
            .collect();
        {
            let checksums = read_lock(&self.checksums);
            for idx in dirty {
                self.table_file
                    .write_all_at(&checksums[idx].to_le_bytes(), idx as u64 * 4)?;
            }
        }
        let health_text = read_lock(&self.health).to_text();
        write_atomic(&self.dir, HEALTH_FILE, health_text.as_bytes())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stair-integ-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checksum_verify_record_cycle() {
        let dir = tmpdir("cvr");
        let integ = Integrity::create(&dir, 4, 2, 16, 3).unwrap();
        let zero = [0u8; 16];
        assert!(integ.verify(0, 0, 0, &zero));
        let data = [9u8; 16];
        assert!(!integ.verify(2, 1, 3, &data));
        integ.record(2, 1, 3, &data);
        assert!(integ.verify(2, 1, 3, &data));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poisoned_locks_stay_usable() {
        // Regression: a worker panicking while holding the health lock
        // used to poison it and turn every later lock().unwrap() into a
        // panic cascade; now the store keeps serving.
        let dir = tmpdir("poison");
        let integ = std::sync::Arc::new(Integrity::create(&dir, 4, 2, 16, 3).unwrap());
        let clone = std::sync::Arc::clone(&integ);
        let died = std::thread::spawn(move || {
            clone.update_health(|_| panic!("worker dies mid-update"));
        })
        .join();
        assert!(died.is_err(), "the worker must have panicked");
        // Health, checksum, and persist paths all still work.
        assert_eq!(integ.health().devices.len(), 4);
        integ.update_health(|h| h.devices[1] = DeviceState::Failed);
        integ.record(0, 0, 0, &[1u8; 16]);
        assert!(integ.verify(0, 0, 0, &[1u8; 16]));
        integ.persist().unwrap();
        assert_eq!(
            Integrity::load(&dir, 4, 2, 3).unwrap().health().devices[1],
            DeviceState::Failed
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistence_round_trips_health_and_checksums() {
        let dir = tmpdir("prt");
        let integ = Integrity::create(&dir, 4, 2, 16, 3).unwrap();
        integ.record(1, 0, 2, &[5u8; 16]);
        integ.update_health(|h| {
            h.devices[3] = DeviceState::Failed;
            h.bad_sectors.insert((1, 1, 0));
        });
        integ.persist().unwrap();
        let again = Integrity::load(&dir, 4, 2, 3).unwrap();
        assert!(again.verify(1, 0, 2, &[5u8; 16]));
        let health = again.health();
        assert_eq!(health.devices[3], DeviceState::Failed);
        assert!(health.bad_sectors.contains(&(1, 1, 0)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
