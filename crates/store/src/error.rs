//! Error type for the stripe-store engine.

use std::fmt;
use std::io;

use stair_code::{CellIdx, CodeError};

/// Errors returned by the store.
#[derive(Debug)]
pub enum Error {
    /// An underlying file operation failed.
    Io(io::Error),
    /// The codec rejected or could not complete an operation.
    Code(CodeError),
    /// The on-disk metadata is missing or malformed.
    Meta(String),
    /// A request fell outside the store's logical address space.
    OutOfRange(String),
    /// A stripe carries more damage than the codec's coverage can repair.
    Unrecoverable {
        /// Index of the stripe that cannot be reconstructed.
        stripe: usize,
        /// The erasure pattern that exceeded coverage.
        erased: Vec<CellIdx>,
    },
    /// The requested device does not exist or is in the wrong state.
    Device(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Code(e) => write!(f, "codec error: {e}"),
            Error::Meta(msg) => write!(f, "bad store metadata: {msg}"),
            Error::OutOfRange(msg) => write!(f, "out of range: {msg}"),
            Error::Unrecoverable { stripe, erased } => write!(
                f,
                "stripe {stripe} is unrecoverable: {} erased sectors exceed coverage ({:?})",
                erased.len(),
                erased
            ),
            Error::Device(msg) => write!(f, "device error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Code(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<CodeError> for Error {
    fn from(e: CodeError) -> Self {
        Error::Code(e)
    }
}
