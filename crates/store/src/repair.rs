//! Online repair: reconstruct lost chunks onto replacement files and
//! rewrite latent-damaged sectors, stripe by stripe, while foreground I/O
//! continues.
//!
//! Failed devices first get fresh zero-filled replacement files and move
//! to the `Rebuilding` state — reads keep treating their sectors as erased
//! (served degraded), so correctness never depends on rebuild progress.
//! Worker threads then shard the stripe range (the
//! `stair_arraysim::parallel` idiom), and each stripe is repaired under
//! its stripe lock: load degraded, decode, write reconstructed cells,
//! refresh checksums. Only when every stripe is done do the replacements
//! become `Healthy`.

use std::sync::Mutex;

use crate::integrity::DeviceState;
use crate::store::StripeStore;
use crate::Error;

/// The outcome of one repair pass.
#[derive(Clone, Debug, Default)]
pub struct RepairReport {
    /// Devices that received replacement files and were rebuilt.
    pub devices_replaced: Vec<usize>,
    /// Stripes that needed (and received) reconstruction.
    pub stripes_repaired: usize,
    /// Sectors rewritten with reconstructed contents.
    pub sectors_rewritten: usize,
    /// Stripes whose damage exceeded the `(m, e)` coverage; their data is
    /// lost and they are left untouched.
    pub unrecoverable_stripes: Vec<usize>,
}

impl RepairReport {
    /// `true` when every damaged stripe was reconstructed.
    pub fn complete(&self) -> bool {
        self.unrecoverable_stripes.is_empty()
    }
}

impl StripeStore {
    /// Repairs the store with `threads` workers: replaces failed devices,
    /// reconstructs their chunks, and rewrites known-bad sectors.
    ///
    /// # Errors
    ///
    /// Propagates the first I/O error; stripes beyond coverage are
    /// *reported* (in [`RepairReport::unrecoverable_stripes`]), not
    /// errors, so one lost stripe does not abort the rebuild of the rest.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn repair(&self, threads: usize) -> Result<RepairReport, Error> {
        assert!(threads > 0, "need at least one repair thread");
        let sh = &self.shared;
        sh.counters
            .repair_stripes_done
            .store(0, std::sync::atomic::Ordering::Relaxed);

        // Phase 1: attach replacement files for failed devices. Devices
        // already in `Rebuilding` (an interrupted earlier pass) are picked
        // up again.
        let health = sh.integrity.health();
        let failed: Vec<usize> = (0..sh.geometry.n)
            .filter(|&d| health.devices[d] == DeviceState::Failed)
            .collect();
        for &dev in &failed {
            sh.devices.replace(dev)?;
        }
        sh.integrity.update_health(|h| {
            for &dev in &failed {
                h.devices[dev] = DeviceState::Rebuilding;
            }
        });
        sh.integrity.persist()?;
        let health = sh.integrity.health();
        let rebuilding: Vec<usize> = (0..sh.geometry.n)
            .filter(|&d| health.devices[d] == DeviceState::Rebuilding)
            .collect();

        // Phase 2: pick the work list — every stripe when chunks must be
        // rebuilt, otherwise only stripes with recorded bad sectors.
        let work: Vec<usize> = if rebuilding.is_empty() {
            let mut stripes: Vec<usize> = health.bad_sectors.iter().map(|&(s, _, _)| s).collect();
            stripes.sort_unstable();
            stripes.dedup();
            stripes
        } else {
            (0..sh.meta.stripes).collect()
        };

        let repaired = Mutex::new(0usize);
        let rewritten = Mutex::new(0usize);
        let unrecoverable = Mutex::new(Vec::new());
        let shard = work.len().div_ceil(threads).max(1);
        let results = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in work.chunks(shard) {
                let repaired = &repaired;
                let rewritten = &rewritten;
                let unrecoverable = &unrecoverable;
                handles.push(scope.spawn(move |_| {
                    for &stripe in chunk {
                        match self.repair_stripe(stripe)? {
                            RepairOutcome::Clean => {}
                            RepairOutcome::Repaired(sectors) => {
                                *repaired.lock().unwrap_or_else(|e| e.into_inner()) += 1;
                                *rewritten.lock().unwrap_or_else(|e| e.into_inner()) += sectors;
                            }
                            RepairOutcome::Unrecoverable => {
                                unrecoverable
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .push(stripe);
                            }
                        }
                        self.shared
                            .counters
                            .repair_stripes_done
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    Ok::<(), Error>(())
                }));
            }
            handles
                .into_iter()
                // check: panic-ok a panicked repair worker is a bug — propagate, don't mask as Error
                .map(|h| h.join().expect("repair worker panicked"))
                .collect::<Vec<_>>()
        })
        // check: panic-ok crossbeam scope only errs if a child panicked; propagate
        .expect("repair scope panicked");
        for r in results {
            r?;
        }

        // Phase 3: promote fully rebuilt replacements. Only devices still
        // in `Rebuilding` — one re-failed concurrently must stay failed.
        let mut unrecoverable = unrecoverable
            .into_inner()
            .unwrap_or_else(|e| e.into_inner());
        unrecoverable.sort_unstable();
        if unrecoverable.is_empty() {
            sh.integrity.update_health(|h| {
                for &dev in &rebuilding {
                    if h.devices[dev] == DeviceState::Rebuilding {
                        h.devices[dev] = DeviceState::Healthy;
                    }
                }
            });
        }
        sh.integrity.persist()?;
        sh.devices.sync()?;

        Ok(RepairReport {
            devices_replaced: rebuilding,
            stripes_repaired: repaired.into_inner().unwrap_or_else(|e| e.into_inner()),
            sectors_rewritten: rewritten.into_inner().unwrap_or_else(|e| e.into_inner()),
            unrecoverable_stripes: unrecoverable,
        })
    }

    fn repair_stripe(&self, stripe_idx: usize) -> Result<RepairOutcome, Error> {
        let sh = &self.shared;
        let _guard = self.lock_stripe(stripe_idx);
        let (mut stripe, erased) = self.load_stripe_degraded(stripe_idx)?;
        if erased.is_empty() {
            return Ok(RepairOutcome::Clean);
        }
        let plan = match sh.codec.plan(&erased) {
            Ok(plan) => plan,
            Err(stair_code::CodeError::Unrecoverable(_)) => {
                return Ok(RepairOutcome::Unrecoverable)
            }
            Err(e) => return Err(e.into()),
        };
        sh.codec.apply(&plan, &mut stripe)?;

        // Write every reconstructed cell back to devices that can take it
        // (healthy, or rebuilding replacements).
        let health = sh.integrity.health();
        let mut written = 0usize;
        let mut cleared = Vec::new();
        for (row, dev) in erased.iter() {
            if health.devices[dev] == DeviceState::Failed {
                continue; // still no backing file
            }
            let cell = stripe.cell((row, dev));
            // check: persist-ok repair rewrites cells already recorded erased: a torn repair write stays erased and is re-repaired
            sh.devices.write_sector(dev, stripe_idx, row, cell)?;
            sh.integrity.record(stripe_idx, row, dev, cell);
            cleared.push((stripe_idx, row, dev));
            written += 1;
        }
        sh.integrity.update_health(|h| {
            for key in cleared {
                h.bad_sectors.remove(&key);
            }
        });
        Ok(RepairOutcome::Repaired(written))
    }
}

enum RepairOutcome {
    Clean,
    Repaired(usize),
    Unrecoverable,
}

#[cfg(test)]
mod tests {
    use crate::store::StripeStore;
    use crate::StoreOptions;

    fn opts() -> StoreOptions {
        StoreOptions {
            code: "stair:8,4,2,1-1-2".parse().unwrap(),
            symbol: 64,
            stripes: 6,
        }
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(37).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn repair_rebuilds_devices_and_bursts_then_scrub_is_clean() {
        let dir = std::env::temp_dir().join(format!("stair-repair-full-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = StripeStore::create(&dir, &opts()).unwrap();
        let payload = pattern(store.capacity() as usize, 21);
        store.write_at(0, &payload).unwrap();

        store.fail_device(2).unwrap();
        store.fail_device(7).unwrap();
        store.corrupt_sectors(4, 1, 2, 2).unwrap();
        store.scrub(2).unwrap(); // detect the burst

        let report = store.repair(3).unwrap();
        assert!(report.complete());
        assert_eq!(report.devices_replaced, vec![2, 7]);
        assert_eq!(report.stripes_repaired, 6); // every stripe lost chunks

        let scrub = store.scrub(2).unwrap();
        assert!(scrub.clean(), "{scrub:?}");
        assert_eq!(store.read_at(0, payload.len()).unwrap(), payload);
        // Status back to fully healthy.
        let status = store.status();
        assert!(status.failed_devices.is_empty());
        assert!(status.rebuilding_devices.is_empty());
        assert_eq!(status.known_bad_sectors, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn burst_only_repair_touches_only_damaged_stripes() {
        let dir = std::env::temp_dir().join(format!("stair-repair-burst-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = StripeStore::create(&dir, &opts()).unwrap();
        let payload = pattern(store.capacity() as usize, 23);
        store.write_at(0, &payload).unwrap();
        store.corrupt_sectors(3, 2, 0, 2).unwrap();
        store.scrub(1).unwrap();
        let report = store.repair(2).unwrap();
        assert!(report.complete());
        assert!(report.devices_replaced.is_empty());
        assert_eq!(report.stripes_repaired, 1);
        assert_eq!(report.sectors_rewritten, 2);
        assert_eq!(store.read_at(0, payload.len()).unwrap(), payload);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression: a write landing on a stripe the repair pass has
    /// already rebuilt must reach the rebuilding replacement device too,
    /// or promotion to healthy would serve the stale rebuilt sector on
    /// the checksum-verified fast path (lost update).
    #[test]
    fn foreground_writes_during_repair_are_not_lost() {
        let dir = std::env::temp_dir().join(format!("stair-repair-wr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = StripeStore::create(
            &dir,
            &StoreOptions {
                stripes: 48,
                ..opts()
            },
        )
        .unwrap();
        let payload = pattern(store.capacity() as usize, 31);
        store.write_at(0, &payload).unwrap();
        store.fail_device(4).unwrap();

        let bps = store.blocks_per_stripe() * store.block_size();
        let mut expected = payload.clone();
        crossbeam::thread::scope(|scope| {
            let repair_store = store.clone();
            let repair = scope.spawn(move |_| repair_store.repair(2).unwrap());
            // Patch one block in every stripe while the rebuild runs, so
            // some writes land before and some after each stripe's repair.
            for stripe in 0..48usize {
                let off = stripe * bps;
                let patch = vec![stripe as u8 ^ 0xC3; store.block_size()];
                store.write_at(off as u64, &patch).unwrap();
                expected[off..off + patch.len()].copy_from_slice(&patch);
            }
            assert!(repair.join().expect("repair").complete());
        })
        .unwrap();

        // Post-promotion reads take the fast path; every write must be
        // visible, and the store must verify end to end.
        assert!(store.status().rebuilding_devices.is_empty());
        assert_eq!(store.read_at(0, expected.len()).unwrap(), expected);
        assert!(store.scrub(2).unwrap().clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreground_reads_proceed_during_repair() {
        let dir = std::env::temp_dir().join(format!("stair-repair-online-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = StripeStore::create(
            &dir,
            &StoreOptions {
                stripes: 32,
                ..opts()
            },
        )
        .unwrap();
        let payload = pattern(store.capacity() as usize, 29);
        store.write_at(0, &payload).unwrap();
        store.fail_device(1).unwrap();

        // Repair on one thread while another hammers degraded reads.
        let reader = store.clone();
        let len = payload.len();
        let expected = payload.clone();
        crossbeam::thread::scope(|scope| {
            let repair = scope.spawn(|_| store.repair(2).unwrap());
            let reads = scope.spawn(move |_| {
                for i in 0..20 {
                    let off = (i * 97) % (len - 256);
                    let got = reader.read_at(off as u64, 256).unwrap();
                    assert_eq!(got, expected[off..off + 256].to_vec());
                }
            });
            reads.join().expect("reader");
            let report = repair.join().expect("repair");
            assert!(report.complete());
        })
        .unwrap();
        assert_eq!(store.read_at(0, payload.len()).unwrap(), payload);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
