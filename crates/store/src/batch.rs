//! The stripe store's native batched submit: the whole point of
//! `stair_device::IoBatch` made concrete.
//!
//! The per-op path pays one stripe-lock acquisition and one codec pass
//! per call even when 64 small writes land in the same stripe. Here the
//! batch is grouped **per stripe** first, so each touched stripe costs:
//!
//! * **one** lock acquisition,
//! * **one** re-encode-vs-parity-delta decision — writes covering every
//!   byte of the stripe rebuild it in memory and encode once (no old
//!   state read at all); anything less loads + restores the stripe
//!   once and patches only the dirty cells,
//! * **one** write-back and (per batch, not per stripe) **one**
//!   integrity persist.
//!
//! Reads in the batch ride along: a stripe that is only read serves the
//! verified fast path under the same single lock; a stripe that is also
//! written serves reads straight from the restored in-memory buffer.
//! Batches whose ops conflict (a write overlapping anything — see
//! [`IoBatch::has_conflicts`]) fall back to plain submission order,
//! where overlap semantics are trivially right.

use std::collections::BTreeSet;
use std::ops::Range;

use stair_code::{CellIdx, StripeBuf};
use stair_device::{seed_results, BatchResult, IoBatch, IoOp, OpResult, WriteOutcome};

use crate::device_impl::write_outcome;
use crate::{Error, StripeStore};

/// A stripe's journal payload: the cells to record, and whether they
/// form a full-stripe data image (parity recomputed at replay).
type JournalRecord<'a> = (Vec<(CellIdx, &'a [u8])>, bool);

/// One op's piece of a single stripe: which op, and which global blocks.
struct Fragment {
    op: usize,
    blocks: Range<usize>,
}

/// A stripe staged in memory (encoded, results recorded) whose
/// write-back is deferred to the batch's group commit: all records are
/// journaled under one fsync, then every stripe persists in place.
struct StagedWrite {
    stripe_idx: usize,
    stripe: StripeBuf,
    /// Cells to persist — `None` persists the full stripe (a whole
    /// -stripe re-encode), `Some` only the patched set.
    touched: Option<BTreeSet<CellIdx>>,
}

impl StripeStore {
    /// Submits a scatter-gather batch, grouping ops per stripe so every
    /// touched stripe is locked once and pays a single
    /// re-encode-vs-parity-delta decision.
    ///
    /// # Errors
    ///
    /// * [`Error::OutOfRange`] if any op's span exceeds capacity — the
    ///   whole batch is validated up front, before any side effects;
    /// * [`Error::Unrecoverable`] when a needed stripe carries more
    ///   damage than the codec's coverage (the first failing stripe
    ///   aborts the rest; earlier stripes stay written).
    pub fn submit(&self, batch: &IoBatch) -> Result<BatchResult, Error> {
        if batch.has_conflicts() {
            // The fallback mutates op by op, so validate the whole
            // batch before any side effects.
            for op in batch.ops() {
                self.shared.blocks.block_span(op.offset(), op.byte_len())?;
            }
            return self.submit_in_order(batch);
        }
        let per = self.blocks_per_stripe();
        let mut results = seed_results(batch.ops());
        // Fragments grouped per stripe, submission order kept within
        // each group. Vec-of-groups (not a map) so group order is
        // ascending stripe index — deterministic lock order. Grouping
        // is side-effect-free, so span validation happens here: a
        // doomed batch still fails before anything executes.
        let mut groups: Vec<(usize, Vec<Fragment>)> = Vec::new();
        for (i, op) in batch.ops().iter().enumerate() {
            let span = self.shared.blocks.block_span(op.offset(), op.byte_len())?;
            let mut block = span.start;
            while block < span.end {
                let stripe = block / per;
                let stripe_end = ((stripe + 1) * per).min(span.end);
                let frag = Fragment {
                    op: i,
                    blocks: block..stripe_end,
                };
                match groups.binary_search_by_key(&stripe, |(s, _)| *s) {
                    Ok(at) => groups[at].1.push(frag),
                    Err(at) => groups.insert(at, (stripe, vec![frag])),
                }
                block = stripe_end;
            }
        }
        // Locks for every touched stripe are held from staging through
        // the group commit — the pool dedupes shared slots and orders
        // them, see `lock_stripes`.
        let stripes: Vec<usize> = groups.iter().map(|(s, _)| *s).collect();
        let _guards = {
            let _lock = stair_obs::trace::span(stair_obs::trace::names::STORE_LOCK);
            self.lock_stripes(&stripes)
        };
        let mut staged: Vec<StagedWrite> = Vec::new();
        for (stripe, frags) in &groups {
            if let Some(stage) = self.stage_stripe(*stripe, frags, batch, &mut results)? {
                staged.push(stage);
            }
        }
        if !staged.is_empty() {
            self.group_commit(&staged)?;
            let _persist = stair_obs::trace::span(stair_obs::trace::names::STORE_PERSIST);
            self.shared.integrity.persist()?;
        }
        Ok(BatchResult::from_results(results))
    }

    /// The batch's single durability point: every staged stripe's
    /// record lands in the journal under **one** fsync (group commit),
    /// then every stripe is persisted in place. The guard spans all
    /// the in-place writes, so a checkpoint can never rewind a record
    /// whose sector writes are still in flight.
    fn group_commit(&self, staged: &[StagedWrite]) -> Result<(), Error> {
        let sh = &self.shared;
        let targets: Vec<Vec<(CellIdx, &[u8])>> = staged
            .iter()
            .map(|s| self.write_back_targets(&s.stripe, s.touched.as_ref()))
            .collect();
        // Journal payloads diverge from the write-back lists for
        // full-stripe stages: those journal a data image (parity
        // recomputed at replay) while still persisting every cell.
        let records: Vec<JournalRecord> = staged
            .iter()
            .map(|s| self.journal_cells(&s.stripe, s.touched.as_ref()))
            .collect();
        let reserve: Vec<usize> = records.iter().map(|(cells, _)| cells.len()).collect();
        let mut guard = sh.journal.begin(&reserve, || {
            sh.devices.sync()?;
            sh.integrity.persist()
        })?;
        if let Some(g) = guard.as_mut() {
            let _span = stair_obs::trace::span(stair_obs::trace::names::JRNL_APPEND);
            for (stage, (cells, encode)) in staged.iter().zip(&records) {
                g.append(stage.stripe_idx, cells, *encode)?;
            }
            g.sync()?;
        }
        for (stage, cells) in staged.iter().zip(&targets) {
            self.apply_write_back(stage.stripe_idx, cells)?;
        }
        drop(guard);
        Ok(())
    }

    /// The conflict fallback: ops one at a time, in submission order,
    /// through the ordinary per-op paths.
    fn submit_in_order(&self, batch: &IoBatch) -> Result<BatchResult, Error> {
        let mut results = Vec::with_capacity(batch.len());
        for op in batch.ops() {
            results.push(match op {
                IoOp::Read { offset, len } => OpResult::Read(self.read_at(*offset, *len)?),
                IoOp::Write { offset, data } => {
                    let report = self.write_at(*offset, data)?;
                    OpResult::Write(write_outcome(&report, data.len() as u64))
                }
            });
        }
        Ok(BatchResult::from_results(results))
    }

    /// Executes every fragment landing in one stripe (the caller holds
    /// the stripe's lock slot for the whole batch). Reads are served
    /// immediately; a written stripe is encoded in memory and returned
    /// for the batch's group commit.
    fn stage_stripe(
        &self,
        stripe_idx: usize,
        frags: &[Fragment],
        batch: &IoBatch,
        results: &mut [OpResult],
    ) -> Result<Option<StagedWrite>, Error> {
        let sh = &self.shared;
        let sym = self.block_size();
        let per = self.blocks_per_stripe();
        let _stripe = stair_obs::trace::span(stair_obs::trace::names::STORE_STRIPE);

        let mut write_bytes = 0u64;
        let mut first_write: Option<usize> = None;
        for f in frags {
            if batch.ops()[f.op].is_write() {
                write_bytes += self.fragment_bytes(&batch.ops()[f.op], &f.blocks);
                first_write.get_or_insert(f.op);
            }
        }
        let Some(first_write) = first_write else {
            // Read-only stripe: the verified fast path per fragment,
            // all under the one lock.
            for f in frags {
                let offset = batch.ops()[f.op].offset();
                let OpResult::Read(out) = &mut results[f.op] else {
                    // check: panic-ok planner invariant: read fragments index read results
                    unreachable!("read fragment indexed a write result")
                };
                self.read_stripe_blocks_locked(stripe_idx, f.blocks.clone(), offset, out)?;
            }
            return Ok(None);
        };

        // One re-encode-vs-parity-delta decision for the whole stripe.
        // Ops are disjoint here (conflicts took the fallback), so the
        // write fragments cover the full stripe exactly when their byte
        // lengths sum to it — and then no read fragment can exist in
        // this stripe, and no old state is needed.
        let full_cover = write_bytes == (per * sym) as u64;
        if full_cover {
            let geom = &sh.geometry;
            let mut stripe = StripeBuf::new(geom.r, geom.n, sym)?;
            for f in frags {
                let IoOp::Write { offset, data } = &batch.ops()[f.op] else {
                    // check: panic-ok full_cover arithmetic leaves no room for read fragments
                    unreachable!("full stripe cover leaves no room for reads")
                };
                for block in f.blocks.clone() {
                    let loc = sh.blocks.locate(block)?;
                    let (incoming, at) = self.incoming_for_block(block, *offset, data);
                    stripe.cell_mut(loc.cell)[at..at + incoming.len()].copy_from_slice(incoming);
                }
                let w = write_slot(results, f.op);
                w.bytes += self.fragment_bytes(&batch.ops()[f.op], &f.blocks);
                w.blocks_written += f.blocks.len() as u64;
            }
            {
                let _encode = stair_obs::trace::span(stair_obs::trace::names::STORE_ENCODE);
                sh.codec.encode(&mut stripe)?;
            }
            sh.counters.count_encode();
            let w = write_slot(results, first_write);
            w.stripes_touched += 1;
            w.full_stripe_encodes += 1;
            return Ok(Some(StagedWrite {
                stripe_idx,
                stripe,
                touched: None,
            }));
        }

        // Partial: load + restore once, patch every dirty cell, serve
        // reads from the restored buffer, write back once.
        let _delta = stair_obs::trace::span(stair_obs::trace::names::STORE_DELTA);
        let (mut stripe, erased) = self.load_stripe_restored(stripe_idx)?;
        let mut touched: BTreeSet<CellIdx> = BTreeSet::new();
        for f in frags {
            match &batch.ops()[f.op] {
                IoOp::Write { offset, data } => {
                    for block in f.blocks.clone() {
                        let loc = sh.blocks.locate(block)?;
                        let (incoming, at) = self.incoming_for_block(block, *offset, data);
                        let mut contents = stripe.cell(loc.cell).to_vec();
                        contents[at..at + incoming.len()].copy_from_slice(incoming);
                        let patched = sh.codec.update(&mut stripe, loc.cell, &contents)?;
                        sh.counters.count_update();
                        touched.insert(loc.cell);
                        touched.extend(patched);
                        let w = write_slot(results, f.op);
                        w.blocks_written += 1;
                        w.delta_updates += 1;
                    }
                    write_slot(results, f.op).bytes +=
                        self.fragment_bytes(&batch.ops()[f.op], &f.blocks);
                }
                IoOp::Read { offset, .. } => {
                    // The restored buffer is fully verified, and reads
                    // are disjoint from the batch's writes, so patching
                    // cannot have changed the bytes a read wants.
                    let offset = *offset;
                    let OpResult::Read(out) = &mut results[f.op] else {
                        // check: panic-ok planner invariant: write fragments index write results
                        unreachable!("read fragment indexed a write result")
                    };
                    for block in f.blocks.clone() {
                        let cell = sh.blocks.locate(block)?.cell;
                        self.copy_block(block, stripe.cell(cell), offset, out);
                    }
                }
            }
        }
        // Erased cells were reconstructed by the restore; rewriting
        // them heals latent damage on writable devices for free.
        touched.extend(erased.iter());
        write_slot(results, first_write).stripes_touched += 1;
        Ok(Some(StagedWrite {
            stripe_idx,
            stripe,
            touched: Some(touched),
        }))
    }

    /// Bytes of `op` that fall inside the fragment's block range.
    fn fragment_bytes(&self, op: &IoOp, blocks: &Range<usize>) -> u64 {
        let sym = self.block_size() as u64;
        let from = op.offset().max(blocks.start as u64 * sym);
        let to = op.end().min(blocks.end as u64 * sym);
        to - from
    }
}

fn write_slot(results: &mut [OpResult], i: usize) -> &mut WriteOutcome {
    match &mut results[i] {
        OpResult::Write(w) => w,
        // check: panic-ok planner invariant: write fragments index write results
        OpResult::Read(_) => unreachable!("write fragment indexed a read result"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StoreOptions, StripeStore};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stair-batch-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(29).wrapping_add(seed))
            .collect()
    }

    fn small_store(tag: &str) -> (PathBuf, StripeStore, Vec<u8>) {
        let dir = tmpdir(tag);
        let store = StripeStore::create(
            &dir,
            &StoreOptions {
                code: "stair:8,4,2,1-1-2".parse().unwrap(),
                symbol: 64,
                stripes: 6,
            },
        )
        .unwrap();
        let base = pattern(store.capacity() as usize, 3);
        store.write_at(0, &base).unwrap();
        (dir, store, base)
    }

    #[test]
    fn mixed_batch_matches_per_op_semantics() {
        let (dir, store, base) = small_store("mixed");
        let sym = store.block_size() as u64;
        let mut batch = IoBatch::new();
        // Reads and writes spread over several stripes, including
        // unaligned spans and a cross-stripe write.
        batch
            .read(10, 100)
            .write(3 * sym, pattern(64, 50))
            .read(19 * sym + 5, 130) // crosses the stripe 0 → 1 boundary
            .write(22 * sym + 7, pattern(200, 51)) // stripe 1, unaligned
            .write(40 * sym - 30, pattern(60, 52)); // crosses stripe 1 → 2
        assert!(!batch.has_conflicts());
        let result = store.submit(&batch).unwrap();
        assert_eq!(result.results.len(), 5);

        // Expected state: base with the writes applied.
        let mut expected = base.clone();
        for op in batch.ops() {
            if let IoOp::Write { offset, data } = op {
                let at = *offset as usize;
                expected[at..at + data.len()].copy_from_slice(data);
            }
        }
        assert_eq!(store.read_at(0, expected.len()).unwrap(), expected);

        // Read results hold the pre-batch bytes (reads are disjoint
        // from the batch's writes, so pre == post on those spans).
        let OpResult::Read(got) = &result.results[0] else {
            panic!("op 0 is a read")
        };
        assert_eq!(got, &expected[10..110]);
        let OpResult::Read(got) = &result.results[2] else {
            panic!("op 2 is a read")
        };
        let at = (19 * sym + 5) as usize;
        assert_eq!(got, &expected[at..at + 130]);

        // Aggregate write outcome counts every written byte exactly once.
        assert_eq!(result.write.bytes, 64 + 200 + 60);
        assert!(result.write.stripes_touched >= 3);

        // Durability: the batch's single persist survives reopen.
        drop(store);
        let store = StripeStore::open(&dir).unwrap();
        assert_eq!(store.read_at(0, expected.len()).unwrap(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn same_stripe_write_batch_pays_one_lock_and_one_parity_pass() {
        // The acceptance geometry: rs:5,16,1 has (5−1)·16 = 64 data
        // blocks per stripe, so 64 single-block writes tile stripe 0.
        let dir = tmpdir("onepass");
        let store = StripeStore::create(
            &dir,
            &StoreOptions {
                code: "rs:5,16,1".parse().unwrap(),
                symbol: 16,
                stripes: 2,
            },
        )
        .unwrap();
        assert_eq!(store.blocks_per_stripe(), 64);
        let sym = store.block_size() as u64;

        let mut batch = IoBatch::new();
        let mut expected = vec![0u8; (64 * sym) as usize];
        // Submission order deliberately scrambled: grouping, not the
        // caller's ordering, must find the single-stripe structure.
        for k in 0..64u64 {
            let block = (k * 37) % 64;
            let data = pattern(sym as usize, block as u8);
            expected[(block * sym) as usize..((block + 1) * sym) as usize].copy_from_slice(&data);
            batch.write(block * sym, data);
        }

        let before = store.io_stats();
        let result = store.submit(&batch).unwrap();
        let after = store.io_stats();

        // Exactly one stripe-lock acquisition and one codec pass for
        // all 64 writes; zero per-cell delta updates.
        assert_eq!(after.stripe_locks - before.stripe_locks, 1);
        assert_eq!(after.encode_passes - before.encode_passes, 1);
        assert_eq!(after.delta_update_calls, before.delta_update_calls);

        // The pass is attributed exactly once across per-op outcomes.
        assert_eq!(result.write.full_stripe_encodes, 1);
        assert_eq!(result.write.stripes_touched, 1);
        assert_eq!(result.write.blocks_written, 64);
        assert_eq!(result.write.bytes, 64 * sym);

        assert_eq!(store.read_at(0, expected.len()).unwrap(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_same_stripe_batch_locks_once_and_deltas_per_block() {
        let (dir, store, base) = small_store("partial");
        let sym = store.block_size() as u64;
        // 4 of the 20 blocks of stripe 0, plus a read from the same
        // stripe: one lock, one load, four delta updates, no encode.
        let mut batch = IoBatch::new();
        for k in 0..4u64 {
            batch.write(k * 2 * sym, pattern(sym as usize, 60 + k as u8));
        }
        batch.read(9 * sym, sym as usize);
        let before = store.io_stats();
        let result = store.submit(&batch).unwrap();
        let after = store.io_stats();
        assert_eq!(after.stripe_locks - before.stripe_locks, 1);
        assert_eq!(after.encode_passes, before.encode_passes);
        assert_eq!(after.delta_update_calls - before.delta_update_calls, 4);
        assert_eq!(result.write.delta_updates, 4);
        assert_eq!(result.write.stripes_touched, 1);
        let OpResult::Read(got) = &result.results[4] else {
            panic!("op 4 is a read")
        };
        assert_eq!(got, &base[(9 * sym) as usize..(10 * sym) as usize]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn conflicting_batch_applies_in_submission_order() {
        let (dir, store, base) = small_store("conflict");
        // Two overlapping writes plus a read of the overlap region
        // *after* both: the read must see the second write's bytes.
        let a = pattern(100, 70);
        let b = pattern(100, 71);
        let mut batch = IoBatch::new();
        batch
            .write(50, a.clone())
            .write(100, b.clone())
            .read(50, 150);
        assert!(batch.has_conflicts());
        let result = store.submit(&batch).unwrap();
        let mut expected = base.clone();
        expected[50..150].copy_from_slice(&a);
        expected[100..200].copy_from_slice(&b);
        let OpResult::Read(got) = &result.results[2] else {
            panic!("op 2 is a read")
        };
        assert_eq!(got, &expected[50..200]);
        assert_eq!(store.read_at(0, expected.len()).unwrap(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_on_a_degraded_stripe_restores_heals_and_serves_reads() {
        let (dir, store, base) = small_store("degraded");
        let sym = store.block_size() as u64;
        store.fail_device(1).unwrap();
        let mut batch = IoBatch::new();
        batch
            .write(0, pattern(sym as usize, 80))
            .read(5 * sym, (2 * sym) as usize);
        let before = store.io_stats();
        let result = store.submit(&batch).unwrap();
        let after = store.io_stats();
        // One restore pass covered both the write patching and the read.
        assert_eq!(after.recover_passes - before.recover_passes, 1);
        assert_eq!(after.stripe_locks - before.stripe_locks, 1);
        let OpResult::Read(got) = &result.results[1] else {
            panic!("op 1 is a read")
        };
        assert_eq!(got, &base[(5 * sym) as usize..(7 * sym) as usize]);
        let mut expected = base.clone();
        expected[..sym as usize].copy_from_slice(&pattern(sym as usize, 80));
        assert_eq!(store.read_at(0, expected.len()).unwrap(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_out_of_range_batches() {
        let (dir, store, _) = small_store("edge");
        let result = store.submit(&IoBatch::new()).unwrap();
        assert!(result.results.is_empty());
        assert_eq!(result.write, WriteOutcome::default());
        // One bad op poisons the whole batch before any side effects.
        let mut batch = IoBatch::new();
        batch.write(0, vec![1, 2, 3]).read(store.capacity(), 1);
        match store.submit(&batch) {
            Err(Error::OutOfRange(_)) => {}
            other => panic!("expected OutOfRange, got {other:?}"),
        }
        // The in-range write of the failed batch was not applied.
        assert_ne!(store.read_at(0, 3).unwrap(), vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
