//! [`BlockDevice`] / [`FaultAdmin`] implementations for the local
//! [`StripeStore`] — the `file:` backend of the unified device API.

use stair_device::{
    BatchResult, BlockDevice, DeviceError, DeviceStatus, FaultAdmin, IoBatch, RepairOutcome,
    ScrubOutcome, ShardHealth, WriteOutcome,
};

use crate::{Error, RepairReport, ScrubReport, StoreStatus, StripeStore, WriteReport};

impl From<Error> for DeviceError {
    fn from(e: Error) -> Self {
        match e {
            Error::Io(io) => DeviceError::Io(io),
            Error::OutOfRange(msg) => DeviceError::OutOfRange(msg),
            e @ Error::Unrecoverable { .. } => DeviceError::Corrupt(e.to_string()),
            e => DeviceError::Backend(e.to_string()),
        }
    }
}

/// Converts one store's status into the unified per-shard health form
/// (tolerances come from the codec spec, so the remote client derives
/// the identical record from its wire status).
pub fn shard_health(status: &StoreStatus) -> ShardHealth {
    ShardHealth {
        codec: status.codec.to_string(),
        capacity: status.capacity,
        block_size: status.block_size,
        stripes: status.stripes,
        blocks_per_stripe: status.blocks_per_stripe,
        device_tolerance: status.codec.m(),
        sector_tolerance: status.codec.s(),
        failed_devices: status.failed_devices.clone(),
        rebuilding_devices: status.rebuilding_devices.clone(),
        known_bad_sectors: status.known_bad_sectors,
        clean_shutdown: status.clean_shutdown,
        replayed_records: status.replayed_records,
    }
}

/// Converts a store write report (which does not carry a byte count)
/// into the unified outcome.
pub fn write_outcome(report: &WriteReport, bytes: u64) -> WriteOutcome {
    WriteOutcome {
        bytes,
        blocks_written: report.blocks_written as u64,
        stripes_touched: report.stripes_touched as u64,
        full_stripe_encodes: report.full_stripe_encodes as u64,
        delta_updates: report.delta_updates as u64,
    }
}

/// Converts a store scrub report into the unified outcome.
pub fn scrub_outcome(report: &ScrubReport) -> ScrubOutcome {
    ScrubOutcome {
        stripes_scanned: report.stripes_scanned as u64,
        sectors_verified: report.sectors_verified as u64,
        mismatches: report.mismatches.len() as u64,
        unavailable_devices: report.unavailable_devices.len() as u64,
        records_cleared: report.records_cleared as u64,
    }
}

/// Converts a store repair report into the unified outcome.
pub fn repair_outcome(report: &RepairReport) -> RepairOutcome {
    RepairOutcome {
        devices_replaced: report.devices_replaced.len() as u64,
        stripes_repaired: report.stripes_repaired as u64,
        sectors_rewritten: report.sectors_rewritten as u64,
        unrecoverable_stripes: report.unrecoverable_stripes.len() as u64,
    }
}

/// Snapshots the process-global `stair-gf` field-arithmetic counters as
/// `gf.*` metrics.
///
/// The gf counters are process-wide (every codec instance shares them),
/// so they must be folded into a metrics snapshot exactly **once** by
/// the top-level caller — never per store, or a sharded aggregate would
/// multiply them by the shard count. [`StripeStore::store_metrics`]
/// deliberately excludes them for this reason.
pub fn gf_metrics() -> stair_obs::MetricsSnapshot {
    let mut snap = stair_obs::MetricsSnapshot::default();
    snap.add_counter("gf.mult_xors", stair_gf::counters::mult_xors());
    snap.add_counter("gf.region_bytes", stair_gf::counters::region_bytes());
    snap
}

impl BlockDevice for StripeStore {
    fn capacity(&self) -> u64 {
        StripeStore::capacity(self)
    }

    fn block_size(&self) -> usize {
        StripeStore::block_size(self)
    }

    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, DeviceError> {
        Ok(StripeStore::read_at(self, offset, len)?)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<WriteOutcome, DeviceError> {
        let report = StripeStore::write_at(self, offset, data)?;
        Ok(write_outcome(&report, data.len() as u64))
    }

    fn submit(&self, batch: &IoBatch) -> Result<BatchResult, DeviceError> {
        Ok(StripeStore::submit(self, batch)?)
    }

    fn flush(&self) -> Result<(), DeviceError> {
        Ok(StripeStore::flush(self)?)
    }

    fn status(&self) -> Result<DeviceStatus, DeviceError> {
        let status = StripeStore::status(self);
        Ok(DeviceStatus {
            backend: "file".into(),
            capacity: status.capacity,
            block_size: status.block_size,
            shards: vec![shard_health(&status)],
            cache: None,
        })
    }

    fn scrub(&self, threads: usize) -> Result<ScrubOutcome, DeviceError> {
        Ok(scrub_outcome(&StripeStore::scrub(self, threads)?))
    }

    fn repair(&self, threads: usize) -> Result<RepairOutcome, DeviceError> {
        Ok(repair_outcome(&StripeStore::repair(self, threads)?))
    }

    fn metrics(&self) -> Result<stair_obs::MetricsSnapshot, DeviceError> {
        let mut snap = self.store_metrics();
        snap.merge(&gf_metrics());
        Ok(snap)
    }
}

impl FaultAdmin for StripeStore {
    fn fail_device(&self, shard: usize, device: usize) -> Result<(), DeviceError> {
        only_shard_zero(shard)?;
        Ok(StripeStore::fail_device(self, device)?)
    }

    fn corrupt_sectors(
        &self,
        shard: usize,
        device: usize,
        stripe: usize,
        row: usize,
        len: usize,
    ) -> Result<(), DeviceError> {
        only_shard_zero(shard)?;
        Ok(StripeStore::corrupt_sectors(
            self, device, stripe, row, len,
        )?)
    }
}

fn only_shard_zero(shard: usize) -> Result<(), DeviceError> {
    if shard != 0 {
        return Err(DeviceError::OutOfRange(format!(
            "a single stripe store has only shard 0 (asked for {shard})"
        )));
    }
    Ok(())
}
