//! Logical address mapping: the store exposes a flat block space (one
//! block = one data sector) laid out stripe by stripe, skipping parity
//! positions, in the logical data-cell order the codec's
//! [`stair_code::Geometry`] declares.

use stair_code::CellIdx;

use crate::Error;

/// Maps logical block indices onto `(stripe, row, col)` sector coordinates.
#[derive(Clone, Debug)]
pub struct BlockMap {
    symbol: usize,
    stripes: usize,
    data_cells: Vec<CellIdx>,
}

/// The location of one logical block inside the physical grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockLocation {
    /// Stripe index.
    pub stripe: usize,
    /// Position of the block among the stripe's data cells.
    pub slot: usize,
    /// Sector coordinate `(row, col)` within the stripe.
    pub cell: CellIdx,
}

impl BlockMap {
    /// Builds the map over a codec's data cells (logical payload order).
    pub fn new(data_cells: Vec<CellIdx>, symbol: usize, stripes: usize) -> Self {
        BlockMap {
            symbol,
            stripes,
            data_cells,
        }
    }

    /// Bytes per block (= sector size).
    pub fn block_size(&self) -> usize {
        self.symbol
    }

    /// Data blocks per stripe.
    pub fn blocks_per_stripe(&self) -> usize {
        self.data_cells.len()
    }

    /// Total logical blocks.
    pub fn total_blocks(&self) -> usize {
        self.stripes * self.data_cells.len()
    }

    /// Total logical bytes.
    pub fn capacity(&self) -> u64 {
        self.total_blocks() as u64 * self.symbol as u64
    }

    /// The data cells of one stripe, in logical order.
    pub fn data_cells(&self) -> &[CellIdx] {
        &self.data_cells
    }

    /// Locates a logical block.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfRange`] past the end of the store.
    pub fn locate(&self, block: usize) -> Result<BlockLocation, Error> {
        if block >= self.total_blocks() {
            return Err(Error::OutOfRange(format!(
                "block {block} >= {}",
                self.total_blocks()
            )));
        }
        let per = self.blocks_per_stripe();
        let slot = block % per;
        Ok(BlockLocation {
            stripe: block / per,
            slot,
            cell: self.data_cells[slot],
        })
    }

    /// The inclusive block range covering the byte span `[offset,
    /// offset+len)`, plus validation against capacity. A zero-length span
    /// yields an empty range.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfRange`] if the span exceeds capacity.
    pub fn block_span(&self, offset: u64, len: usize) -> Result<std::ops::Range<usize>, Error> {
        let end = offset
            .checked_add(len as u64)
            .ok_or_else(|| Error::OutOfRange("offset + len overflows".into()))?;
        if end > self.capacity() {
            return Err(Error::OutOfRange(format!(
                "byte span [{offset}, {end}) exceeds capacity {}",
                self.capacity()
            )));
        }
        if len == 0 {
            return Ok(0..0);
        }
        let first = (offset / self.symbol as u64) as usize;
        let last = ((end - 1) / self.symbol as u64) as usize;
        Ok(first..last + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> BlockMap {
        let spec = "stair:8,4,2,1-1-2".parse().unwrap();
        let codec = crate::build_codec(&spec).unwrap();
        BlockMap::new(codec.geometry().data_cells, 512, 10)
    }

    #[test]
    fn geometry_matches_config() {
        let m = map();
        // n=8, r=4, m=2 → 6 surviving chunks × 4 rows − s=4 globals = 20.
        assert_eq!(m.blocks_per_stripe(), 20);
        assert_eq!(m.total_blocks(), 200);
        assert_eq!(m.capacity(), 200 * 512);
    }

    #[test]
    fn locate_walks_stripes_in_order() {
        let m = map();
        let a = m.locate(0).unwrap();
        assert_eq!((a.stripe, a.slot), (0, 0));
        let b = m.locate(20).unwrap();
        assert_eq!((b.stripe, b.slot), (1, 0));
        let c = m.locate(199).unwrap();
        assert_eq!((c.stripe, c.slot), (9, 19));
        assert!(m.locate(200).is_err());
    }

    #[test]
    fn block_span_covers_partial_blocks() {
        let m = map();
        assert_eq!(m.block_span(0, 512).unwrap(), 0..1);
        assert_eq!(m.block_span(10, 512).unwrap(), 0..2);
        assert_eq!(m.block_span(511, 2).unwrap(), 0..2);
        assert_eq!(m.block_span(512, 0).unwrap(), 0..0);
        assert!(m.block_span(200 * 512 - 1, 2).is_err());
    }
}
