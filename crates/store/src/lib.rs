//! `stair-store`: a concurrent, file-backed stripe-store engine generic
//! over any [`stair_code::ErasureCode`] — STAIR, SD, or Reed–Solomon.
//!
//! The STAIR paper positions its codes as protection for *practical
//! storage systems* that must survive whole-device failures plus
//! sector-level bursts — and its claims are *comparative*: same coverage
//! as SD codes with less space and cheaper updates. The rest of this
//! workspace exercises the codecs one stripe at a time; this crate is the
//! storage-engine layer above them, and doubles as the benchmark harness
//! where every codec runs the same real I/O path (pick one with
//! [`build_codec`] / `StoreOptions::code`):
//!
//! * a flat logical **block space** (one block = one data sector) mapped
//!   onto stripes laid out across `n` per-device backing files
//!   ([`BlockMap`]);
//! * a **write path** that batches dirty blocks per stripe — full-stripe
//!   writes re-encode in one pass, small writes take the parity-delta
//!   update path ([`StripeStore::write_at`]);
//! * a **read path** that serves **degraded reads** transparently when
//!   devices or sectors are lost, using the decode planner to reconstruct
//!   only what the request needs ([`StripeStore::read_at`]);
//! * a background **scrubber** verifying per-sector Fletcher-32 checksums
//!   ([`StripeStore::scrub`]) and an **online repair** pass that rebuilds
//!   lost chunks onto replacement files while foreground I/O continues
//!   ([`StripeStore::repair`]);
//! * a **failure-injection** bridge replaying `stair_arraysim`'s sector
//!   failure models against the real store
//!   ([`StripeStore::inject_failures`]).
//!
//! # Example
//!
//! ```
//! use stair_store::{StoreOptions, StripeStore};
//!
//! let dir = std::env::temp_dir().join(format!("stair-store-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! // `code` accepts any spec: stair:n,r,m,e / sd:n,r,m,s / rs:n,r,m.
//! let opts = StoreOptions {
//!     code: "stair:8,4,2,1-1-2".parse()?,
//!     symbol: 64,
//!     stripes: 4,
//! };
//! let store = StripeStore::create(&dir, &opts)?;
//!
//! // Write, lose two devices and a sector burst, read back degraded.
//! let payload: Vec<u8> = (0..store.capacity() as usize).map(|i| i as u8).collect();
//! store.write_at(0, &payload)?;
//! store.fail_device(1)?;
//! store.fail_device(6)?;
//! store.corrupt_sectors(3, 0, 2, 2)?;
//! assert_eq!(store.read_at(0, payload.len())?, payload);
//!
//! // Repair online, then a scrub reports clean.
//! assert!(store.repair(2)?.complete());
//! assert!(store.scrub(2)?.clean());
//! std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod checksum;
mod codec;
mod device;
mod device_impl;
mod error;
mod inject;
mod integrity;
pub mod journal;
mod layout;
mod meta;
mod repair;
mod scrub;
mod store;

pub use codec::build_codec;
pub use device_impl::{gf_metrics, repair_outcome, scrub_outcome, shard_health, write_outcome};
pub use error::Error;
pub use inject::InjectionOutcome;
pub use integrity::{BadSector, DeviceState, Health};
pub use journal::{Journal, DEFAULT_JOURNAL_SEGMENT, JOURNAL_FILE};
pub use layout::{BlockLocation, BlockMap};
pub use meta::StoreMeta;
pub use repair::RepairReport;
pub use scrub::ScrubReport;
pub use store::{IoStats, StoreOptions, StoreStatus, StripeStore, WriteReport};
