//! stair-journal: the store's write-ahead intent log.
//!
//! The store persists stripes **in place**, so a crash between the
//! first and last `write_sector` of a stripe write-back leaves the
//! stripe neither old nor new — the one corruption mode an erasure
//! code cannot see (old parity over new data *verifies* per cell but
//! decodes garbage). The journal closes that hole by inverting the
//! persistence order: before any in-place sector write, the **post
//! image** of every cell the commit will touch is appended here as one
//! length-prefixed, checksummed record and (by default) fsync'd. A
//! crash at any instant then leaves one of two recoverable states:
//!
//! * the record is absent or torn → no in-place write for it can have
//!   started, the stripe is still whole under its *old* contents;
//! * the record is whole → replay at open rewrites every cell from the
//!   post image (and re-records its checksum), finishing the commit.
//!
//! Replay is idempotent — records carry absolute post-images, not
//! deltas — so replaying any prefix, any number of times, converges.
//!
//! Records come in two kinds. A **cells record** carries the literal
//! post-image of every cell the commit writes (data and parity alike)
//! and replays as raw sector writes. A **data-image record** (the
//! `ENCODE_FLAG` bit) carries only the stripe's data cells; the
//! replayer rebuilds the stripe and recomputes parity with the codec.
//! Full-stripe commits use the latter: parity is a pure function of
//! the data, so journaling it would only add bytes to the record's
//! fsync — the dominant per-commit cost.
//!
//! The log is a single fixed-capacity segment file (`journal.stair`),
//! **preallocated to its full capacity at open** so the per-append
//! fsync never carries a file-size metadata update (on a journaling
//! filesystem that halves its cost). The live region is delimited not
//! by the file length but by an eight-byte zero **terminator stamp**
//! written right after the last record: replay parses records until it
//! hits the stamp (a zero length field), a torn record (checksum
//! mismatch), or a sequence break. When an append would overflow the
//! segment, the committer first takes a **checkpoint**: under an
//! exclusive gate (waiting out every commit that is mid-flight between
//! its append and its sector writes), the device files and the
//! integrity table are made durable and the stamp is rewound to the
//! header — no truncation, no metadata churn. Everything after the
//! last checkpoint is therefore always still in the journal.
//!
//! A batch that commits several stripes at once uses the group-commit
//! API ([`Journal::begin`] → [`CommitGuard::append`] per stripe →
//! one [`CommitGuard::sync`]): every record of the batch shares a
//! single fsync, amortizing the dominant per-commit cost across the
//! whole submission.
//!
//! Knobs (read once per store open):
//!
//! * `STAIR_JOURNAL=0` disables appends (replay of an existing journal
//!   still runs — a log written by an enabled run must still recover);
//! * `STAIR_JOURNAL_SYNC=0` skips the per-append fsync (still correct
//!   against `kill -9`, which does not drop the page cache; only
//!   power loss needs the fsync);
//! * `STAIR_JOURNAL_SEGMENT=<bytes>` sets the segment capacity at
//!   store creation (recorded in the v3 superblock thereafter).

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use stair_code::CellIdx;

use crate::checksum::fletcher32;
use crate::Error;

/// File name of the journal segment inside a store directory.
pub const JOURNAL_FILE: &str = "journal.stair";

/// Segment capacity used when `STAIR_JOURNAL_SEGMENT` is unset at
/// store creation (v1/v2 superblocks adopt it on first v3 open).
pub const DEFAULT_JOURNAL_SEGMENT: u64 = 8 * 1024 * 1024;

/// Magic prefix of the segment file.
const JOURNAL_MAGIC: &[u8; 8] = b"STAIRJNL";
/// On-disk format version (bumped only on incompatible layout change).
const FORMAT_VERSION: u32 = 1;
/// Bytes of `JOURNAL_MAGIC` + format version before the first record.
const HEADER_LEN: u64 = 12;
/// Fixed body bytes before the per-cell payloads: seq (8) + stripe (4)
/// + cell count (4, top bit = `ENCODE_FLAG`).
const BODY_FIXED: usize = 16;
/// Per-cell bytes besides the symbol payload: row (4) + dev (4).
const CELL_FIXED: usize = 8;
/// Top bit of the cell-count field: the record is a full-stripe **data
/// image** — its cells are exactly the stripe's data cells, and the
/// applier recomputes parity instead of reading it from the record.
/// Full-stripe commits use this to journal ~`k/n` of the stripe's
/// bytes; the dominant journal cost is the fsync of those bytes, so
/// the saving is directly visible in write throughput.
const ENCODE_FLAG: u32 = 1 << 31;

// Same poisoning policy as `integrity.rs`: a thread that panicked while
// holding a journal lock left no half-written *in-memory* invariant
// worth dying over (the file tail may hold a torn record, which replay
// already tolerates), so every guard recovers the lock.

fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

fn mutex_lock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `true` unless env var `name` is set to exactly `0`.
fn env_flag(name: &str) -> bool {
    !matches!(std::env::var(name).as_deref(), Ok("0"))
}

/// The segment capacity requested by the environment at store creation.
pub fn env_journal_segment() -> u64 {
    std::env::var("STAIR_JOURNAL_SEGMENT")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(|v| v.max(HEADER_LEN))
        .unwrap_or(DEFAULT_JOURNAL_SEGMENT)
}

struct Inner {
    file: File,
    /// Bytes of the segment in use (header + whole records).
    used: u64,
    /// Actual on-disk file length (≥ capacity after preallocation,
    /// larger only while an oversized record overruns the segment).
    file_len: u64,
    /// Next record sequence number. Replay requires consecutive
    /// sequence numbers, so a stale record surviving past a rewound
    /// stamp can never be mistaken for live tail.
    seq: u64,
}

/// Eight zero bytes: a zero record-length field, which replay treats
/// as end-of-log. Stamped after every append and at each checkpoint.
const TERMINATOR: [u8; 8] = [0; 8];

/// One record decoded during replay: the stripe it commits and the
/// post-image of every cell the commit was to write.
pub struct ReplayRecord<'a> {
    /// Record sequence number as written.
    pub seq: u64,
    /// Stripe index the record commits.
    pub stripe: usize,
    /// `(cell, post-image)` for every cell of the commit. For an
    /// `encode` record these are exactly the stripe's data cells.
    pub cells: Vec<(CellIdx, &'a [u8])>,
    /// A full-stripe data image: the applier must rebuild the stripe
    /// from `cells` and recompute parity, then persist every cell.
    pub encode: bool,
}

/// Held by a committer from its first journal append until its
/// in-place sector writes are done; a checkpoint's exclusive gate
/// waits out every live guard, so the stamp rewind never races a
/// half-applied commit. Multi-stripe committers call
/// [`CommitGuard::append`] once per stripe and [`CommitGuard::sync`]
/// once — group commit: one fsync covers every record of the batch.
pub struct CommitGuard<'a> {
    journal: &'a Journal,
    _gate: RwLockReadGuard<'a, ()>,
    appended: u64,
}

impl CommitGuard<'_> {
    /// Appends one stripe record (post-image of every cell in `cells`)
    /// without fsyncing. Call [`CommitGuard::sync`] before the first
    /// in-place sector write the record covers. `encode` marks a
    /// full-stripe data image (`cells` must then be exactly the data
    /// cells) whose parity the replayer recomputes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the segment write.
    pub fn append(
        &mut self,
        stripe: usize,
        cells: &[(CellIdx, &[u8])],
        encode: bool,
    ) -> Result<(), Error> {
        if cells.is_empty() {
            return Ok(());
        }
        self.journal.append_record(stripe, cells, encode)?;
        self.appended += 1;
        Ok(())
    }

    /// Makes every record appended through this guard durable (one
    /// fdatasync, skipped under `STAIR_JOURNAL_SYNC=0` or when nothing
    /// was appended). Must run before the caller's first in-place
    /// sector write.
    ///
    /// # Errors
    ///
    /// Propagates the fsync error.
    pub fn sync(&self) -> Result<(), Error> {
        if self.journal.sync && self.appended > 0 {
            mutex_lock(&self.journal.inner).file.sync_data()?;
        }
        Ok(())
    }
}

/// The write-ahead intent log of one store.
pub struct Journal {
    symbol: usize,
    capacity: u64,
    enabled: bool,
    sync: bool,
    inner: Mutex<Inner>,
    /// Shared by committers (append → write-back), exclusive for
    /// checkpoint truncation. Gate holders acquire no further locks
    /// (the inner mutex is always released before returning), so the
    /// stripe-lock → gate order cannot deadlock.
    commit_gate: RwLock<()>,
    /// Records appended since open (metrics).
    appends: std::sync::atomic::AtomicU64,
    /// Checkpoints taken since open (metrics).
    checkpoints: std::sync::atomic::AtomicU64,
}

impl Journal {
    /// Opens (creating if absent) the journal segment of the store in
    /// `dir`. `capacity` comes from the superblock; `symbol` fixes the
    /// per-cell payload size of every record.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a file that exists but is not a stair
    /// journal (wrong magic or format version).
    pub fn open_or_create(dir: &Path, symbol: usize, capacity: u64) -> Result<Self, Error> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(JOURNAL_FILE))?;
        let capacity = capacity.max(HEADER_LEN);
        let len = file.metadata()?.len();
        if len < HEADER_LEN {
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(JOURNAL_MAGIC);
            header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            file.write_all_at(&header, 0)?;
        } else {
            let mut header = [0u8; HEADER_LEN as usize];
            file.read_exact_at(&mut header, 0)?;
            if &header[..8] != JOURNAL_MAGIC {
                return Err(Error::Meta(format!("{JOURNAL_FILE} has wrong magic")));
            }
            let version = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
            if version != FORMAT_VERSION {
                return Err(Error::Meta(format!(
                    "{JOURNAL_FILE} format v{version} is not supported (want v{FORMAT_VERSION})"
                )));
            }
        }
        // Preallocate to full capacity once, so appends never change
        // the file length and their fsyncs stay metadata-free. The new
        // tail is zeros — a terminator wherever the live records end.
        if len < capacity {
            file.set_len(capacity)?;
            file.sync_all()?;
        }
        Ok(Journal {
            symbol,
            capacity,
            enabled: env_flag("STAIR_JOURNAL"),
            sync: env_flag("STAIR_JOURNAL_SYNC"),
            // `used` starts at the header: the file length no longer
            // marks the live end. A reopen over live records must
            // replay first — replay re-derives `used` from the parse —
            // and checkpoint before new commits (the store's open path
            // does exactly that).
            inner: Mutex::new(Inner {
                file,
                used: HEADER_LEN,
                file_len: len.max(capacity),
                seq: 0,
            }),
            commit_gate: RwLock::new(()),
            appends: std::sync::atomic::AtomicU64::new(0),
            checkpoints: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Records appended since this handle opened the journal.
    pub fn append_count(&self) -> u64 {
        self.appends.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Checkpoints taken since this handle opened the journal.
    pub fn checkpoint_count(&self) -> u64 {
        self.checkpoints.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Whether appends are on for this handle (`STAIR_JOURNAL` knob).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Segment capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes of the segment currently holding records (header included).
    pub fn used_bytes(&self) -> u64 {
        mutex_lock(&self.inner).used
    }

    /// Total on-disk bytes one record with `cells` cells occupies.
    fn record_len(&self, cells: usize) -> u64 {
        (8 + BODY_FIXED + cells * (CELL_FIXED + self.symbol)) as u64
    }

    /// Opens a group commit covering up to `reserve.len()` stripe
    /// records (entry *i* = the cell count of record *i*, an upper
    /// bound is fine). Returns the guard the committer appends
    /// through, or `None` when journaling is disabled or the
    /// reservation is empty.
    ///
    /// When the reservation would overflow the segment, runs `persist`
    /// (the caller's make-everything-durable closure) under the
    /// exclusive gate and rewinds the stamp first; a reservation
    /// larger than the whole segment is still admitted (the file
    /// temporarily overruns capacity rather than wedging the store).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the checkpoint path.
    pub fn begin<'a>(
        &'a self,
        reserve: &[usize],
        persist: impl Fn() -> Result<(), Error>,
    ) -> Result<Option<CommitGuard<'a>>, Error> {
        if !self.enabled || reserve.is_empty() {
            return Ok(None);
        }
        let need: u64 = reserve.iter().map(|&cells| self.record_len(cells)).sum();
        let mut checkpointed = false;
        loop {
            {
                let gate = read_lock(&self.commit_gate);
                if mutex_lock(&self.inner).used + need <= self.capacity || checkpointed {
                    return Ok(Some(CommitGuard {
                        journal: self,
                        _gate: gate,
                        appended: 0,
                    }));
                }
            }
            self.checkpoint(&persist)?;
            checkpointed = true;
        }
    }

    /// Makes the intent of one stripe commit durable: appends a record
    /// carrying the post-image of every cell in `cells` and, unless
    /// `STAIR_JOURNAL_SYNC=0`, fsyncs it — all **before** the caller
    /// performs any in-place sector write. Returns a guard the caller
    /// must hold until those writes are done (`None` when journaling
    /// is disabled or the commit is empty). Multi-stripe committers
    /// use [`Journal::begin`] instead and share one fsync.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the append and checkpoint paths.
    pub fn commit<'a>(
        &'a self,
        stripe: usize,
        cells: &[(CellIdx, &[u8])],
        encode: bool,
        persist: impl Fn() -> Result<(), Error>,
    ) -> Result<Option<CommitGuard<'a>>, Error> {
        if cells.is_empty() {
            return Ok(None);
        }
        let _span = stair_obs::trace::span(stair_obs::trace::names::JRNL_APPEND);
        let Some(mut guard) = self.begin(&[cells.len()], persist)? else {
            return Ok(None);
        };
        guard.append(stripe, cells, encode)?;
        guard.sync()?;
        Ok(Some(guard))
    }

    /// Writes one record at the live end (no fsync — that is the
    /// guard's [`CommitGuard::sync`]) and stamps a terminator after
    /// it, so replay can never run past the last live record into
    /// stale pre-checkpoint bytes.
    fn append_record(
        &self,
        stripe: usize,
        cells: &[(CellIdx, &[u8])],
        encode: bool,
    ) -> Result<(), Error> {
        let mut inner = mutex_lock(&self.inner);
        let seq = inner.seq;
        inner.seq += 1;
        let mut record = self.encode_record(seq, stripe, cells, encode);
        let at = inner.used;
        let end = at + record.len() as u64;
        // The terminator rides in the same write when it fits inside
        // the preallocated region; at the very end of the file, EOF
        // itself terminates the parse.
        if end + TERMINATOR.len() as u64 <= inner.file_len {
            record.extend_from_slice(&TERMINATOR);
        }
        inner.file.write_all_at(&record, at)?;
        inner.used = end;
        inner.file_len = inner.file_len.max(at + record.len() as u64);
        self.appends
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    /// Runs `persist` (make every journaled effect durable in place)
    /// and then rewinds the segment to empty by stamping a terminator
    /// at the header — the file length never changes. Waits out every
    /// in-flight [`CommitGuard`] first, so the rewind never races a
    /// commit that is between its append and its sector writes.
    /// `persist` always runs — a checkpoint is the store's durability
    /// point even when the segment is already empty.
    ///
    /// # Errors
    ///
    /// Propagates errors from `persist` and the stamp write.
    pub fn checkpoint(&self, persist: impl Fn() -> Result<(), Error>) -> Result<(), Error> {
        let _gate = write_lock(&self.commit_gate);
        let mut inner = mutex_lock(&self.inner);
        persist()?;
        inner.file.write_all_at(&TERMINATOR, HEADER_LEN)?;
        if self.sync {
            inner.file.sync_data()?;
        }
        inner.used = HEADER_LEN;
        inner.file_len = inner.file_len.max(HEADER_LEN + TERMINATOR.len() as u64);
        self.checkpoints
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    fn encode_record(
        &self,
        seq: u64,
        stripe: usize,
        cells: &[(CellIdx, &[u8])],
        encode: bool,
    ) -> Vec<u8> {
        let body_len = BODY_FIXED + cells.len() * (CELL_FIXED + self.symbol);
        let mut body = Vec::with_capacity(body_len);
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(&(stripe as u32).to_le_bytes());
        let count = cells.len() as u32 | if encode { ENCODE_FLAG } else { 0 };
        body.extend_from_slice(&count.to_le_bytes());
        for &((row, dev), data) in cells {
            debug_assert_eq!(data.len(), self.symbol);
            body.extend_from_slice(&(row as u32).to_le_bytes());
            body.extend_from_slice(&(dev as u32).to_le_bytes());
            body.extend_from_slice(data);
        }
        let mut record = Vec::with_capacity(8 + body.len());
        record.extend_from_slice(&(body.len() as u32).to_le_bytes());
        record.extend_from_slice(&fletcher32(&body).to_le_bytes());
        record.extend_from_slice(&body);
        record
    }

    /// Replays every whole record in file order, calling `apply` per
    /// record; parsing stops (without error) at the terminator stamp,
    /// at the first torn or corrupt record, or at a sequence break —
    /// by the append-before-write ordering, nothing past that point
    /// can have reached the devices. Returns the number of records
    /// applied and re-derives the live end for subsequent appends.
    /// Does **not** rewind; take a [`Journal::checkpoint`] once the
    /// replayed state is durable.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors reading the segment and errors from
    /// `apply`.
    pub fn replay(
        &self,
        mut apply: impl FnMut(&ReplayRecord<'_>) -> Result<(), Error>,
    ) -> Result<u64, Error> {
        let _span = stair_obs::trace::span(stair_obs::trace::names::JRNL_REPLAY);
        let buf = {
            let inner = mutex_lock(&self.inner);
            let len = inner.file.metadata()?.len() as usize;
            let mut buf = vec![0u8; len];
            inner.file.read_exact_at(&mut buf, 0)?;
            buf
        };
        let mut at = HEADER_LEN as usize;
        let mut applied = 0u64;
        let mut prev_seq: Option<u64> = None;
        while at + 8 <= buf.len() {
            let len = u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]]) as usize;
            let sum = u32::from_le_bytes([buf[at + 4], buf[at + 5], buf[at + 6], buf[at + 7]]);
            if len < BODY_FIXED || at + 8 + len > buf.len() {
                break; // terminator stamp, or record longer than the file
            }
            let body = &buf[at + 8..at + 8 + len];
            if fletcher32(body) != sum {
                break; // torn tail: record half-written
            }
            let Some(record) = self.decode_body(body) else {
                break; // internally inconsistent: treat as torn
            };
            // Live records are consecutive: a checksum-lucky stale
            // record past a lost terminator cannot continue the chain.
            if prev_seq.is_some_and(|p| record.seq != p + 1) {
                break;
            }
            prev_seq = Some(record.seq);
            apply(&record)?;
            applied += 1;
            at += 8 + len;
        }
        // Appends after a dirty reopen continue from the live end
        // (the store checkpoints first, which rewinds this to the
        // header — but correctness must not depend on that).
        let mut inner = mutex_lock(&self.inner);
        inner.used = inner.used.max(at as u64);
        inner.seq = inner.seq.max(prev_seq.map_or(0, |p| p + 1));
        Ok(applied)
    }

    fn decode_body<'a>(&self, body: &'a [u8]) -> Option<ReplayRecord<'a>> {
        let seq = u64::from_le_bytes(body[..8].try_into().ok()?);
        let stripe = u32::from_le_bytes(body[8..12].try_into().ok()?) as usize;
        let raw_count = u32::from_le_bytes(body[12..16].try_into().ok()?);
        let encode = raw_count & ENCODE_FLAG != 0;
        let count = (raw_count & !ENCODE_FLAG) as usize;
        if body.len() != BODY_FIXED + count * (CELL_FIXED + self.symbol) {
            return None;
        }
        let mut cells = Vec::with_capacity(count);
        let mut at = BODY_FIXED;
        for _ in 0..count {
            let row = u32::from_le_bytes(body[at..at + 4].try_into().ok()?) as usize;
            let dev = u32::from_le_bytes(body[at + 4..at + 8].try_into().ok()?) as usize;
            let data = &body[at + 8..at + 8 + self.symbol];
            cells.push(((row, dev), data));
            at += CELL_FIXED + self.symbol;
        }
        Some(ReplayRecord {
            seq,
            stripe,
            cells,
            encode,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stair-jrnl-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cells(symbol: usize, seed: u8, n: usize) -> Vec<(CellIdx, Vec<u8>)> {
        (0..n)
            .map(|i| ((i / 3, i % 3), vec![seed.wrapping_add(i as u8); symbol]))
            .collect()
    }

    fn borrow(owned: &[(CellIdx, Vec<u8>)]) -> Vec<(CellIdx, &[u8])> {
        owned.iter().map(|(c, d)| (*c, d.as_slice())).collect()
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = tmpdir("rt");
        let j = Journal::open_or_create(&dir, 16, 1 << 20).unwrap();
        let a = cells(16, 1, 4);
        let b = cells(16, 9, 2);
        drop(j.commit(3, &borrow(&a), false, || Ok(())).unwrap());
        drop(j.commit(5, &borrow(&b), false, || Ok(())).unwrap());
        let mut seen = Vec::new();
        let n = j
            .replay(|rec| {
                seen.push((
                    rec.stripe,
                    rec.cells
                        .iter()
                        .map(|(c, d)| (*c, d.to_vec()))
                        .collect::<Vec<_>>(),
                ));
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(seen, vec![(3, a), (5, b)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_stops_replay_without_error() {
        let dir = tmpdir("torn");
        let j = Journal::open_or_create(&dir, 8, 1 << 20).unwrap();
        let a = cells(8, 2, 3);
        drop(j.commit(1, &borrow(&a), false, || Ok(())).unwrap());
        drop(j.commit(2, &borrow(&a), false, || Ok(())).unwrap());
        // Tear the second record: chop bytes off the live end (the
        // reopen preallocates the tail back to zeros, exactly what a
        // torn write leaves behind).
        let live_end = j.used_bytes();
        drop(j);
        let path = dir.join(JOURNAL_FILE);
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(live_end - 5).unwrap();
        drop(file);
        let j = Journal::open_or_create(&dir, 8, 1 << 20).unwrap();
        let n = j.replay(|rec| {
            assert_eq!(rec.stripe, 1);
            Ok(())
        });
        assert_eq!(n.unwrap(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let dir = tmpdir("corrupt");
        let j = Journal::open_or_create(&dir, 8, 1 << 20).unwrap();
        let a = cells(8, 3, 2);
        drop(j.commit(0, &borrow(&a), false, || Ok(())).unwrap());
        // Flip one payload byte: the checksum no longer matches.
        let live_end = j.used_bytes() as usize;
        drop(j);
        let path = dir.join(JOURNAL_FILE);
        let mut raw = std::fs::read(&path).unwrap();
        raw[live_end - 3] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let j = Journal::open_or_create(&dir, 8, 1 << 20).unwrap();
        assert_eq!(j.replay(|_| Ok(())).unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn full_segment_checkpoints_then_appends() {
        let dir = tmpdir("full");
        // Capacity fits exactly one 1-cell record (8 + 16 + 8 + 8 = 40
        // bytes) past the 12-byte header.
        let j = Journal::open_or_create(&dir, 8, 12 + 40).unwrap();
        let a = cells(8, 4, 1);
        let persists = std::sync::atomic::AtomicU64::new(0);
        let persist = || {
            persists.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Ok(())
        };
        drop(j.commit(0, &borrow(&a), false, persist).unwrap());
        assert_eq!(persists.load(std::sync::atomic::Ordering::Relaxed), 0);
        // Second commit overflows → checkpoint (persist ran, segment
        // truncated) → append succeeds.
        drop(j.commit(1, &borrow(&a), false, persist).unwrap());
        assert_eq!(persists.load(std::sync::atomic::Ordering::Relaxed), 1);
        let n = j.replay(|rec| {
            assert_eq!(rec.stripe, 1);
            Ok(())
        });
        assert_eq!(n.unwrap(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_record_still_commits() {
        let dir = tmpdir("oversized");
        let j = Journal::open_or_create(&dir, 64, 16).unwrap();
        let a = cells(64, 5, 4);
        drop(j.commit(7, &borrow(&a), false, || Ok(())).unwrap());
        assert_eq!(j.replay(|_| Ok(())).unwrap(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_and_is_idempotent() {
        let dir = tmpdir("ckpt");
        let j = Journal::open_or_create(&dir, 8, 1 << 20).unwrap();
        let a = cells(8, 6, 2);
        drop(j.commit(0, &borrow(&a), false, || Ok(())).unwrap());
        assert!(j.used_bytes() > HEADER_LEN);
        j.checkpoint(|| Ok(())).unwrap();
        assert_eq!(j.used_bytes(), HEADER_LEN);
        assert_eq!(j.replay(|_| Ok(())).unwrap(), 0);
        // persist always runs (a checkpoint is the durability point
        // even with an empty segment), and its failure propagates.
        assert!(j
            .checkpoint(|| Err(Error::Meta("persist failed".into())))
            .is_err());
        assert_eq!(j.checkpoint_count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_shares_one_guard_and_replays_in_order() {
        let dir = tmpdir("group");
        let j = Journal::open_or_create(&dir, 16, 1 << 20).unwrap();
        let a = cells(16, 1, 2);
        let b = cells(16, 7, 3);
        {
            let mut g = j.begin(&[2, 3], || Ok(())).unwrap().unwrap();
            g.append(4, &borrow(&a), false).unwrap();
            g.append(9, &borrow(&b), true).unwrap();
            g.sync().unwrap();
        }
        assert_eq!(j.append_count(), 2);
        let mut stripes = Vec::new();
        let n = j
            .replay(|rec| {
                stripes.push(rec.stripe);
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(stripes, vec![4, 9]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_records_past_a_rewound_stamp_do_not_replay() {
        let dir = tmpdir("stale");
        let j = Journal::open_or_create(&dir, 8, 1 << 20).unwrap();
        let a = cells(8, 1, 2);
        drop(j.commit(0, &borrow(&a), false, || Ok(())).unwrap());
        drop(j.commit(1, &borrow(&a), false, || Ok(())).unwrap());
        j.checkpoint(|| Ok(())).unwrap();
        // Only the stamp separates the now-stale records from replay.
        assert_eq!(j.replay(|_| Ok(())).unwrap(), 0);
        // A fresh record overwrites the first stale one; replay must
        // stop at its terminator, not run on into stale record two.
        drop(j.commit(7, &borrow(&a), false, || Ok(())).unwrap());
        let mut stripes = Vec::new();
        let n = j
            .replay(|rec| {
                stripes.push(rec.stripe);
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(stripes, vec![7]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn encode_flag_round_trips() {
        let dir = tmpdir("encflag");
        let j = Journal::open_or_create(&dir, 16, 1 << 20).unwrap();
        let a = cells(16, 2, 3);
        let b = cells(16, 5, 2);
        drop(j.commit(1, &borrow(&a), true, || Ok(())).unwrap());
        drop(j.commit(2, &borrow(&b), false, || Ok(())).unwrap());
        let mut kinds = Vec::new();
        let n = j
            .replay(|rec| {
                kinds.push((rec.stripe, rec.encode, rec.cells.len()));
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(kinds, vec![(1, true, 3), (2, false, 2)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let dir = tmpdir("magic");
        std::fs::write(dir.join(JOURNAL_FILE), b"NOTAJRNL\0\0\0\0").unwrap();
        assert!(Journal::open_or_create(&dir, 8, 1 << 20).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
