//! The codec registry: turning a [`CodecSpec`] into a live
//! [`ErasureCode`].
//!
//! This is the only place in the store that names concrete codec types;
//! everything downstream works through the trait object. Adding a codec
//! family means one more arm here (plus a grammar arm in
//! [`stair_code::CodecSpec`]).

use stair::{Config, StairCodec};
use stair_code::{CodecSpec, ErasureCode};
use stair_sd::{RsArrayCode, SdCode};

use crate::Error;

/// Builds the erasure code a spec describes, over GF(2^8).
///
/// # Errors
///
/// Returns [`Error::Code`] when the parameters are invalid for the family
/// (or, for SD, when the algebraic construction does not exist at these
/// parameters — the paper's motivating limitation).
pub fn build_codec(spec: &CodecSpec) -> Result<Box<dyn ErasureCode>, Error> {
    match spec {
        CodecSpec::Stair { n, r, m, e } => {
            let config = Config::new(*n, *r, *m, e).map_err(stair_code::CodeError::from)?;
            let codec: StairCodec = StairCodec::new(config).map_err(stair_code::CodeError::from)?;
            Ok(Box::new(codec))
        }
        CodecSpec::Sd { n, r, m, s } => {
            let code: SdCode<stair_gf::Gf8> =
                SdCode::new(*n, *r, *m, *s).map_err(stair_code::CodeError::from)?;
            Ok(Box::new(code))
        }
        CodecSpec::Rs { n, r, m } => {
            let code: RsArrayCode<stair_gf::Gf8> =
                RsArrayCode::new(*n, *r, *m).map_err(stair_code::CodeError::from)?;
            Ok(Box::new(code))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_family() {
        for spec in ["stair:8,4,2,1-1-2", "sd:6,4,1,2", "rs:8,4,2"] {
            let spec: CodecSpec = spec.parse().unwrap();
            let codec = build_codec(&spec).unwrap();
            let geom = codec.geometry();
            assert_eq!(geom.n, spec.n());
            assert_eq!(geom.r, spec.r());
            assert_eq!(geom.m, spec.m());
            assert!(!geom.data_cells.is_empty());
        }
    }

    #[test]
    fn impossible_specs_fail() {
        for spec in ["stair:8,4,2,9-9-9", "sd:4,4,3,3", "rs:4,4,4"] {
            let spec: CodecSpec = spec.parse().unwrap();
            assert!(build_codec(&spec).is_err(), "{spec} should not build");
        }
    }
}
