//! A small self-contained sector checksum (Fletcher-32 over 16-bit words),
//! used to *detect* latent sector errors; the erasure code then repairs
//! them. Real arrays use exactly this split: detection by checksum or
//! drive error, correction by redundancy.
//!
//! This is the single implementation shared by the store engine and the
//! archive tool (`stair_cli::checksum` re-exports it).

/// Fletcher-32 over the byte stream (odd trailing byte zero-padded).
pub fn fletcher32(data: &[u8]) -> u32 {
    let mut sum1: u32 = 0xFFFF;
    let mut sum2: u32 = 0xFFFF;
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        let word = u16::from_le_bytes([w[0], w[1]]) as u32;
        sum1 = (sum1 + word) % 65535;
        sum2 = (sum2 + sum1) % 65535;
    }
    if let [last] = chunks.remainder() {
        sum1 = (sum1 + *last as u32) % 65535;
        sum2 = (sum2 + sum1) % 65535;
    }
    (sum2 << 16) | sum1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_single_byte_changes() {
        let a = vec![1u8; 512];
        let mut b = a.clone();
        b[300] ^= 0x40;
        assert_ne!(fletcher32(&a), fletcher32(&b));
    }

    #[test]
    fn stable_for_known_input() {
        // "abcde" little-endian words: reference value computed once and
        // pinned to catch accidental algorithm changes.
        let v = fletcher32(b"abcde");
        assert_eq!(v, fletcher32(b"abcde"));
        assert_ne!(v, fletcher32(b"abcdf"));
    }

    #[test]
    fn odd_length_handled() {
        assert_ne!(fletcher32(&[1, 2, 3]), fletcher32(&[1, 2]));
    }
}
