//! Background scrubbing: walk every stripe verifying per-sector checksums
//! and fold what is found into the health record.
//!
//! Scrubbing is the detection half of the paper's operational story (§8):
//! latent sector errors are silent until something reads the sector, so
//! arrays periodically scan themselves; the erasure code then repairs
//! whatever the scan uncovers. The walk is sharded across worker threads
//! with the same scoped-thread idiom as `stair_arraysim::parallel`, and
//! takes the per-stripe locks, so it can run behind foreground I/O.

use std::sync::Mutex;

use crate::device::SectorRead;
use crate::integrity::{BadSector, DeviceState};
use crate::store::StripeStore;
use crate::Error;

/// The outcome of one scrub pass.
#[derive(Clone, Debug, Default)]
pub struct ScrubReport {
    /// Stripes walked.
    pub stripes_scanned: usize,
    /// Sectors read and checksummed.
    pub sectors_verified: usize,
    /// Sectors whose contents did not match their checksum (or could not
    /// be read) on otherwise-healthy devices.
    pub mismatches: Vec<BadSector>,
    /// Devices that are failed or rebuilding and were skipped entirely.
    pub unavailable_devices: Vec<usize>,
    /// Stale bad-sector records cleared because the sector now verifies.
    pub records_cleared: usize,
}

impl ScrubReport {
    /// `true` when the store is fully healthy: every device available and
    /// every sector verified.
    pub fn clean(&self) -> bool {
        self.mismatches.is_empty() && self.unavailable_devices.is_empty()
    }
}

impl StripeStore {
    /// Scrubs the whole store with `threads` workers, updating the health
    /// record with every mismatch found (and clearing records that no
    /// longer reproduce).
    ///
    /// # Errors
    ///
    /// Propagates the first I/O error a worker hits.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn scrub(&self, threads: usize) -> Result<ScrubReport, Error> {
        assert!(threads > 0, "need at least one scrub thread");
        let sh = &self.shared;
        let stripes = sh.meta.stripes;
        sh.counters
            .scrub_stripes_done
            .store(0, std::sync::atomic::Ordering::Relaxed);
        let health = sh.integrity.health();
        let unavailable: Vec<usize> = (0..sh.geometry.n)
            .filter(|&d| health.devices[d] != DeviceState::Healthy)
            .collect();

        let mismatches = Mutex::new(Vec::new());
        let verified = Mutex::new(0usize);
        let shard = stripes.div_ceil(threads).max(1);
        let results =
            crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for w in 0..threads {
                    let lo = (w * shard).min(stripes);
                    let hi = ((w + 1) * shard).min(stripes);
                    if lo == hi {
                        continue;
                    }
                    let mismatches = &mismatches;
                    let verified = &verified;
                    let unavailable = &unavailable;
                    handles.push(scope.spawn(move |_| {
                        self.scrub_range(lo..hi, unavailable, mismatches, verified)
                    }));
                }
                handles
                    .into_iter()
                    // check: panic-ok a panicked scrub worker is a bug — propagate, don't mask as Error
                    .map(|h| h.join().expect("scrub worker panicked"))
                    .collect::<Vec<_>>()
            })
            // check: panic-ok crossbeam scope only errs if a child panicked; propagate
            .expect("scrub scope panicked");
        for r in results {
            r?;
        }

        let mismatches = mismatches.into_inner().unwrap_or_else(|e| e.into_inner());
        // Reconcile against the snapshot taken when the pass started: a
        // record from *before* the pass whose sector now verifies is
        // stale and cleared; records added concurrently (by degraded
        // reads racing the walk) are left alone — this pass cannot vouch
        // for them.
        let mut records_cleared = 0usize;
        sh.integrity.update_health(|h| {
            let stale: Vec<BadSector> = health
                .bad_sectors
                .iter()
                .copied()
                .filter(|&(_, _, dev)| health.devices[dev] == DeviceState::Healthy)
                .filter(|k| !mismatches.contains(k))
                .collect();
            for key in &stale {
                h.bad_sectors.remove(key);
            }
            records_cleared = stale.len();
            h.bad_sectors.extend(mismatches.iter().copied());
        });
        sh.integrity.persist()?;

        Ok(ScrubReport {
            stripes_scanned: stripes,
            sectors_verified: verified.into_inner().unwrap_or_else(|e| e.into_inner()),
            mismatches,
            unavailable_devices: unavailable,
            records_cleared,
        })
    }

    fn scrub_range(
        &self,
        range: std::ops::Range<usize>,
        unavailable: &[usize],
        mismatches: &Mutex<Vec<BadSector>>,
        verified: &Mutex<usize>,
    ) -> Result<(), Error> {
        let sh = &self.shared;
        let mut buf = vec![0u8; sh.meta.symbol];
        let mut local_bad = Vec::new();
        let mut local_ok = 0usize;
        for stripe in range {
            let _guard = self.lock_stripe(stripe);
            for dev in 0..sh.geometry.n {
                if unavailable.contains(&dev) {
                    continue;
                }
                for row in 0..sh.geometry.r {
                    match sh.devices.read_sector(dev, stripe, row, &mut buf)? {
                        SectorRead::Missing => local_bad.push((stripe, row, dev)),
                        SectorRead::Ok => {
                            if sh.integrity.verify(stripe, row, dev, &buf) {
                                local_ok += 1;
                            } else {
                                local_bad.push((stripe, row, dev));
                            }
                        }
                    }
                }
            }
            sh.counters
                .scrub_stripes_done
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        mismatches
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend(local_bad);
        *verified.lock().unwrap_or_else(|e| e.into_inner()) += local_ok;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::store::StripeStore;
    use crate::StoreOptions;

    fn opts() -> StoreOptions {
        StoreOptions {
            code: "stair:8,4,2,1-1-2".parse().unwrap(),
            symbol: 64,
            stripes: 5,
        }
    }

    #[test]
    fn scrub_clean_store_is_clean() {
        let dir = std::env::temp_dir().join(format!("stair-scrub-clean-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = StripeStore::create(&dir, &opts()).unwrap();
        let report = store.scrub(3).unwrap();
        assert!(report.clean());
        assert_eq!(report.stripes_scanned, 5);
        assert_eq!(report.sectors_verified, 5 * 4 * 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_finds_bursts_and_failed_devices() {
        let dir = std::env::temp_dir().join(format!("stair-scrub-find-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = StripeStore::create(&dir, &opts()).unwrap();
        let payload = vec![0x5Au8; store.capacity() as usize];
        store.write_at(0, &payload).unwrap();
        store.corrupt_sectors(6, 2, 1, 2).unwrap();
        store.fail_device(0).unwrap();
        let report = store.scrub(2).unwrap();
        assert!(!report.clean());
        assert_eq!(report.unavailable_devices, vec![0]);
        let mut found = report.mismatches.clone();
        found.sort_unstable();
        assert_eq!(found, vec![(2, 1, 6), (2, 2, 6)]);
        // The damage is now recorded for repair.
        assert_eq!(store.status().known_bad_sectors, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
