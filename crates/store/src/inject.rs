//! Failure injection: replay `stair_arraysim`'s sector-failure models
//! (§7.1.2 — independent sector errors, or Pareto-tailed correlated
//! bursts) against a *real* on-disk store.
//!
//! `arraysim` samples failures into an in-memory byte array; this module
//! drives the same [`FailureInjector`] over the store's stripes and
//! devices, corrupting actual file contents. Simulated reliability
//! scenarios thereby become executable end-to-end workloads: inject,
//! scrub (detect), read degraded, repair.

use stair_arraysim::FailureInjector;

use crate::integrity::DeviceState;
use crate::store::StripeStore;
use crate::Error;

/// What one injection pass did to the store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InjectionOutcome {
    /// Chunks (stripe × device) the model was sampled for.
    pub chunks_sampled: usize,
    /// Chunks that received at least one corrupted sector.
    pub chunks_hit: usize,
    /// Total sectors corrupted on disk.
    pub sectors_corrupted: usize,
}

impl StripeStore {
    /// Samples `injector` once per (stripe, healthy device) chunk and
    /// corrupts the sampled sector rows on disk. The injector must have
    /// been built with `r` equal to this store's sectors-per-chunk so the
    /// burst model's truncation matches the chunk geometry.
    ///
    /// Corruption is bit-flipping with a stale checksum — invisible until
    /// a read or scrub verifies the sector, exactly like a latent sector
    /// error in the field.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying corruption writes.
    pub fn inject_failures(
        &self,
        injector: &mut FailureInjector,
    ) -> Result<InjectionOutcome, Error> {
        let sh = &self.shared;
        let devices = sh.integrity.device_states();
        let mut outcome = InjectionOutcome::default();
        for stripe in 0..sh.meta.stripes {
            for (dev, &state) in devices.iter().enumerate() {
                if state != DeviceState::Healthy {
                    continue;
                }
                outcome.chunks_sampled += 1;
                let rows: Vec<usize> = injector
                    .sample_chunk()
                    .into_iter()
                    .filter(|&row| row < sh.geometry.r)
                    .collect();
                if rows.is_empty() {
                    continue;
                }
                outcome.chunks_hit += 1;
                for run in contiguous_runs(&rows) {
                    self.corrupt_sectors(dev, stripe, run.0, run.1)?;
                    outcome.sectors_corrupted += run.1;
                }
            }
        }
        Ok(outcome)
    }
}

/// Collapses sorted row indices into `(start, len)` runs.
fn contiguous_runs(rows: &[usize]) -> Vec<(usize, usize)> {
    let mut runs: Vec<(usize, usize)> = Vec::new();
    for &row in rows {
        match runs.last_mut() {
            Some((start, len)) if *start + *len == row => *len += 1,
            _ => runs.push((row, 1)),
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreOptions;

    #[test]
    fn runs_are_collapsed() {
        assert_eq!(contiguous_runs(&[]), vec![]);
        assert_eq!(contiguous_runs(&[2]), vec![(2, 1)]);
        assert_eq!(
            contiguous_runs(&[1, 2, 3, 7, 9, 10]),
            vec![(1, 3), (7, 1), (9, 2)]
        );
    }

    #[test]
    fn injected_model_failures_are_detected_and_repaired() {
        let dir = std::env::temp_dir().join(format!("stair-inject-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = StoreOptions {
            code: "stair:8,8,2,2-2".parse().unwrap(),
            symbol: 32,
            stripes: 8,
        };
        let store = StripeStore::create(&dir, &opts).unwrap();
        let payload: Vec<u8> = (0..store.capacity() as usize)
            .map(|i| (i % 251) as u8)
            .collect();
        store.write_at(0, &payload).unwrap();

        // High rate so the pass reliably corrupts something; seeded, so
        // the test is deterministic.
        let mut injector = FailureInjector::independent(8, 0.05, 0xC0FFEE);
        let outcome = store.inject_failures(&mut injector).unwrap();
        assert!(outcome.sectors_corrupted > 0, "{outcome:?}");
        assert_eq!(outcome.chunks_sampled, 8 * 8);

        let scrub = store.scrub(2).unwrap();
        assert_eq!(scrub.mismatches.len(), outcome.sectors_corrupted);

        // The model can exceed (m, e) coverage on unlucky stripes; with
        // this seed it stays within coverage, so repair completes and the
        // data survives.
        let report = store.repair(2).unwrap();
        assert!(report.complete(), "{report:?}");
        assert_eq!(store.read_at(0, payload.len()).unwrap(), payload);
        assert!(store.scrub(2).unwrap().clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
