//! Per-device backing files.
//!
//! Each of the `n` devices is one flat file of `stripes × r` sectors;
//! sector `(stripe, row)` of device `j` lives at byte offset
//! `(stripe·r + row)·symbol` of `dev_j`'s file. Reads and writes use
//! positioned I/O (`pread`/`pwrite`), so concurrent stripe operations
//! never contend on a shared cursor.

use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::RwLock;

use crate::Error;

/// Name of device `j`'s backing file.
pub fn device_file_name(device: usize) -> String {
    format!("dev_{device:02}.stair")
}

/// The result of reading one sector.
#[derive(Debug, PartialEq, Eq)]
pub enum SectorRead {
    /// The full sector was read.
    Ok,
    /// The device file is absent (failed device) or too short.
    Missing,
}

/// The set of `n` backing files for one store.
pub struct DeviceSet {
    dir: PathBuf,
    r: usize,
    symbol: usize,
    stripes: usize,
    slots: Vec<RwLock<Option<File>>>,
}

impl DeviceSet {
    /// Opens whatever device files exist under `dir`; absent files leave
    /// their slot empty (the health table decides how to treat that).
    pub fn open(dir: &Path, n: usize, r: usize, symbol: usize, stripes: usize) -> Self {
        let slots = (0..n)
            .map(|j| {
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(dir.join(device_file_name(j)))
                    .ok();
                RwLock::new(file)
            })
            .collect();
        DeviceSet {
            dir: dir.to_path_buf(),
            r,
            symbol,
            stripes,
            slots,
        }
    }

    /// Creates all `n` device files zero-filled to their full size.
    pub fn create(
        dir: &Path,
        n: usize,
        r: usize,
        symbol: usize,
        stripes: usize,
    ) -> Result<Self, Error> {
        let len = (stripes * r * symbol) as u64;
        for j in 0..n {
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create_new(true)
                .open(dir.join(device_file_name(j)))?;
            file.set_len(len)?;
        }
        Ok(Self::open(dir, n, r, symbol, stripes))
    }

    /// Whether device `j`'s backing file is currently present.
    pub fn is_present(&self, device: usize) -> bool {
        self.slots[device]
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    fn offset(&self, stripe: usize, row: usize) -> u64 {
        ((stripe * self.r + row) * self.symbol) as u64
    }

    /// Reads sector `(stripe, row)` of `device` into `buf`
    /// (`buf.len() == symbol`).
    ///
    /// # Errors
    ///
    /// Propagates real I/O errors; an absent or truncated file is reported
    /// as [`SectorRead::Missing`], not an error.
    pub fn read_sector(
        &self,
        device: usize,
        stripe: usize,
        row: usize,
        buf: &mut [u8],
    ) -> Result<SectorRead, Error> {
        debug_assert_eq!(buf.len(), self.symbol);
        let slot = self.slots[device].read().unwrap_or_else(|e| e.into_inner());
        let Some(file) = slot.as_ref() else {
            return Ok(SectorRead::Missing);
        };
        match file.read_exact_at(buf, self.offset(stripe, row)) {
            Ok(()) => Ok(SectorRead::Ok),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(SectorRead::Missing),
            Err(e) => Err(e.into()),
        }
    }

    /// Writes sector `(stripe, row)` of `device`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Device`] if the device file is absent.
    pub fn write_sector(
        &self,
        device: usize,
        stripe: usize,
        row: usize,
        data: &[u8],
    ) -> Result<(), Error> {
        debug_assert_eq!(data.len(), self.symbol);
        let slot = self.slots[device].read().unwrap_or_else(|e| e.into_inner());
        let Some(file) = slot.as_ref() else {
            return Err(Error::Device(format!(
                "device {device} has no backing file (failed?)"
            )));
        };
        file.write_all_at(data, self.offset(stripe, row))?;
        Ok(())
    }

    /// Drops the handle and deletes the backing file (device failure).
    pub fn remove(&self, device: usize) -> Result<(), Error> {
        let mut slot = self.slots[device]
            .write()
            .unwrap_or_else(|e| e.into_inner());
        *slot = None;
        let path = self.dir.join(device_file_name(device));
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Creates a fresh zero-filled replacement file for `device` (the
    /// first step of online repair).
    pub fn replace(&self, device: usize) -> Result<(), Error> {
        let mut slot = self.slots[device]
            .write()
            .unwrap_or_else(|e| e.into_inner());
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(self.dir.join(device_file_name(device)))?;
        file.set_len((self.stripes * self.r * self.symbol) as u64)?;
        *slot = Some(file);
        Ok(())
    }

    /// Flushes all live device files to disk.
    pub fn sync(&self) -> Result<(), Error> {
        for slot in &self.slots {
            if let Some(file) = slot.read().unwrap_or_else(|e| e.into_inner()).as_ref() {
                file.sync_data()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stair-dev-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn sector_round_trip_and_offsets() {
        let dir = tmpdir("rt");
        let set = DeviceSet::create(&dir, 3, 4, 16, 5).unwrap();
        let data = [0xABu8; 16];
        set.write_sector(2, 3, 1, &data).unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(set.read_sector(2, 3, 1, &mut buf).unwrap(), SectorRead::Ok);
        assert_eq!(buf, data);
        // Neighbouring sector untouched (still zero).
        assert_eq!(set.read_sector(2, 3, 2, &mut buf).unwrap(), SectorRead::Ok);
        assert_eq!(buf, [0u8; 16]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_then_replace_restores_zeroed_device() {
        let dir = tmpdir("rr");
        let set = DeviceSet::create(&dir, 2, 2, 8, 2).unwrap();
        set.write_sector(1, 0, 0, &[7u8; 8]).unwrap();
        set.remove(1).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(
            set.read_sector(1, 0, 0, &mut buf).unwrap(),
            SectorRead::Missing
        );
        assert!(set.write_sector(1, 0, 0, &[1u8; 8]).is_err());
        set.replace(1).unwrap();
        assert_eq!(set.read_sector(1, 0, 0, &mut buf).unwrap(), SectorRead::Ok);
        assert_eq!(buf, [0u8; 8]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
