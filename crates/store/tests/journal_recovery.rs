//! Crash-consistency end to end: torn in-place writes are finished by
//! journal replay at open, and replay is idempotent over any byte
//! prefix of the log, applied any number of times.
//!
//! These tests simulate crashes by file surgery (capturing the live
//! superblock + journal and restoring them after a clean close); the
//! real process-kill coverage lives in the `chaos_kill9` harness in
//! `crates/bench`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use stair_store::{StoreOptions, StripeStore, JOURNAL_FILE};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stair-jrnlrec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

fn opts() -> StoreOptions {
    StoreOptions {
        code: "stair:8,4,2,1-1-2".parse().unwrap(),
        symbol: 64,
        stripes: 6,
    }
}

/// Files that make up a store's durable state.
const STATE_FILES: &[&str] = &[
    "store.meta",
    "checksums.bin",
    "health.txt",
    JOURNAL_FILE,
    "dev_00.stair",
    "dev_01.stair",
    "dev_02.stair",
    "dev_03.stair",
    "dev_04.stair",
    "dev_05.stair",
    "dev_06.stair",
    "dev_07.stair",
];

fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    STATE_FILES
        .iter()
        .map(|name| (name.to_string(), std::fs::read(dir.join(name)).unwrap()))
        .collect()
}

fn restore(dir: &Path, snap: &BTreeMap<String, Vec<u8>>) {
    for (name, bytes) in snap {
        std::fs::write(dir.join(name), bytes).unwrap();
    }
}

/// Whole records in a journal byte image truncated to `cut` bytes
/// (the 12-byte header + length-prefixed records). The segment is
/// preallocated, so parsing stops at the zero terminator stamp — a
/// record body is at least 16 bytes.
fn whole_records(journal: &[u8], cut: usize) -> u64 {
    let mut at = 12usize;
    let mut n = 0u64;
    while at + 8 <= cut {
        let len = u32::from_le_bytes([
            journal[at],
            journal[at + 1],
            journal[at + 2],
            journal[at + 3],
        ]) as usize;
        if len < 16 || at + 8 + len > cut {
            break; // terminator stamp, or a torn tail
        }
        n += 1;
        at += 8 + len;
    }
    n
}

/// Where the live records of a preallocated journal image end (the
/// byte offset of the terminator stamp).
fn live_end(journal: &[u8]) -> usize {
    let mut at = 12usize;
    while at + 8 <= journal.len() {
        let len = u32::from_le_bytes([
            journal[at],
            journal[at + 1],
            journal[at + 2],
            journal[at + 3],
        ]) as usize;
        if len < 16 || at + 8 + len > journal.len() {
            break;
        }
        at += 8 + len;
    }
    at
}

#[test]
fn torn_write_back_is_finished_by_replay() {
    let dir = tmpdir("torn");
    let store = StripeStore::create(&dir, &opts()).unwrap();
    let base = pattern(store.capacity() as usize, 3);
    store.write_at(0, &base).unwrap();
    store.flush().unwrap(); // checkpoint: journal empty, base durable
    let sym = store.block_size();

    // An acknowledged full-stripe overwrite whose intent record is
    // still in the journal (no checkpoint between write and "crash").
    // Full-stripe: the record carries every cell of stripe 0, so any
    // torn cell of that stripe is covered by replay.
    let blocks_per_stripe = store.capacity() as usize / sym / 6;
    let newdata = pattern(blocks_per_stripe * sym, 77);
    store.write_at(0, &newdata).unwrap();
    let mut expected = base.clone();
    expected[..newdata.len()].copy_from_slice(&newdata);

    // Capture the crash-instant state, then let the clean close run.
    let live = snapshot(&dir);
    assert!(
        live_end(&live[JOURNAL_FILE]) > 12,
        "journal must hold a record"
    );
    drop(store);
    restore(&dir, &live);

    // Tear the in-place write: scramble stripe-0 sectors on several
    // devices — data and parity both (a full-stripe commit journals
    // only the data image, so replay must *recompute* the scrambled
    // parity, not copy it) — as if the kill landed mid write-back. The
    // checksum table is the crash-instant one, so without replay this
    // store would be checksum-stale and torn.
    for dev in [0, 1, 2, 7] {
        let path = dir.join(format!("dev_{dev:02}.stair"));
        let mut raw = std::fs::read(&path).unwrap();
        for b in raw.iter_mut().take(4 * sym) {
            *b ^= 0x5A;
        }
        std::fs::write(&path, &raw).unwrap();
    }

    let store = StripeStore::open(&dir).unwrap();
    let status = store.status();
    assert!(!status.clean_shutdown, "the crash must be observed");
    assert!(status.replayed_records > 0, "the record must replay");
    // The acknowledged write is present, the torn stripe is whole, and
    // a scrub agrees the store is consistent.
    assert_eq!(store.read_at(0, expected.len()).unwrap(), expected);
    assert!(store.scrub(2).unwrap().clean());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn disabled_journal_still_replays_existing_records() {
    // STAIR_JOURNAL=0 gates appends, not recovery: a log written by an
    // enabled run must still be honored. Process-global env vars would
    // race other tests, so this builds the crash state with journaling
    // on and only checks that replay does not depend on the flag by
    // replaying through a normal open (the flag is read per handle).
    let dir = tmpdir("disabled");
    let store = StripeStore::create(&dir, &opts()).unwrap();
    let base = pattern(store.capacity() as usize, 8);
    store.write_at(0, &base).unwrap();
    let live = snapshot(&dir);
    drop(store);
    restore(&dir, &live);
    let store = StripeStore::open(&dir).unwrap();
    assert!(store.status().replayed_records > 0);
    assert_eq!(store.read_at(0, base.len()).unwrap(), base);
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replaying **any byte prefix** of the journal, **twice**,
    /// converges to a scrub-clean store where every block holds either
    /// its pre-crash or its acknowledged post-write contents.
    #[test]
    fn replaying_any_prefix_twice_converges(
        blocks in proptest::collection::btree_set(0usize..120, 1..12),
        seed_base in 0u8..250,
        cut_permille in 0u32..=1000,
    ) {
        let writes: BTreeMap<usize, u8> = blocks
            .iter()
            .map(|&b| (b, seed_base.wrapping_add(b as u8).wrapping_mul(7)))
            .collect();
        let dir = tmpdir(&format!("prefix-{}-{}", writes.len() * 7 + cut_permille as usize, seed_base));
        let store = StripeStore::create(&dir, &opts()).unwrap();
        let sym = store.block_size();
        let base = pattern(store.capacity() as usize, 1);
        store.write_at(0, &base).unwrap();
        store.flush().unwrap();
        let durable = snapshot(&dir); // the pre-crash durable state

        // Distinct-block writes, each one journal record per stripe
        // fragment, applied in deterministic order.
        for (&block, &seed) in &writes {
            store.write_at((block * sym) as u64, &pattern(sym, seed)).unwrap();
        }
        let journal = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();
        let meta_live = std::fs::read(dir.join("store.meta")).unwrap();
        drop(store);

        // Crash: durable state from before the writes, plus an
        // arbitrary byte prefix of the journal's live region (the tail
        // torn off — the reopen preallocates the rest back to zeros).
        let cut = 12 + (live_end(&journal) - 12) * cut_permille as usize / 1000;
        restore(&dir, &durable);
        std::fs::write(dir.join("store.meta"), &meta_live).unwrap();
        std::fs::write(dir.join(JOURNAL_FILE), &journal[..cut]).unwrap();

        let store = StripeStore::open(&dir).unwrap();
        prop_assert_eq!(store.status().replayed_records, whole_records(&journal, cut));
        prop_assert!(store.scrub(2).unwrap().clean());
        let after_once = store.read_at(0, base.len()).unwrap();
        for block in 0..base.len() / sym {
            let got = &after_once[block * sym..(block + 1) * sym];
            let old = &base[block * sym..(block + 1) * sym];
            let ok = match writes.get(&block) {
                Some(&seed) => got == pattern(sym, seed) || got == old,
                None => got == old,
            };
            prop_assert!(ok, "block {} is neither old nor new", block);
        }
        drop(store);

        // Replay the same prefix a second time over the already-
        // replayed state: must converge to the identical image.
        std::fs::write(dir.join(JOURNAL_FILE), &journal[..cut]).unwrap();
        std::fs::write(dir.join("store.meta"), &meta_live).unwrap();
        let store = StripeStore::open(&dir).unwrap();
        prop_assert_eq!(store.status().replayed_records, whole_records(&journal, cut));
        prop_assert!(store.scrub(2).unwrap().clean());
        prop_assert_eq!(store.read_at(0, base.len()).unwrap(), after_once);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
