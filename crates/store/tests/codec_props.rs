//! Cross-codec property test: every [`ErasureCode`] implementation must
//! round-trip random payloads through encode → erase → plan/apply, for
//! randomized within-coverage failure patterns (whole devices plus
//! sector bursts), all through the one shared trait interface the store
//! uses.

use proptest::prelude::*;
use stair_code::{CodecSpec, ErasureCode, ErasureSet, StripeBuf};
use stair_store::build_codec;

/// Deterministic small RNG so cases reproduce exactly.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n.max(1)
    }
    fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.below(i + 1);
            v.swap(i, j);
        }
    }
}

/// The codec specs under test. Small geometries keep the solve/peel work
/// per case cheap; every family is represented, including an SD code with
/// `m = 0` (pure sector parity) analogue avoided — the store requires
/// device parity — so all specs carry `m ≥ 1`.
const SPECS: &[&str] = &[
    "stair:8,4,2,1-1-2",
    "stair:6,4,1,2",
    "stair:5,3,1,1-1",
    "sd:6,4,1,2",
    "sd:5,3,1,1",
    "rs:6,4,2",
    "rs:5,3,1",
];

/// A random within-coverage erasure pattern for a codec: up to `m` whole
/// devices, plus (where the codec tolerates sector damage) a burst of up
/// to [`Geometry::burst`] rows in one further device — the codec's own
/// advertised single-chunk tolerance.
fn random_pattern(code: &dyn ErasureCode, rng: &mut Lcg) -> ErasureSet {
    let geom = code.geometry();
    let mut devices: Vec<usize> = (0..geom.n).collect();
    rng.shuffle(&mut devices);
    let failed = rng.below(geom.m + 1);
    let mut cells: Vec<(usize, usize)> = devices
        .iter()
        .take(failed)
        .flat_map(|&d| (0..geom.r).map(move |row| (row, d)))
        .collect();
    if geom.burst > 0 {
        let burst_dev = devices[geom.m]; // never one of the failed devices
        let max_burst = geom.burst.min(geom.r);
        let burst = 1 + rng.below(max_burst);
        let start = rng.below(geom.r - burst + 1);
        cells.extend((start..start + burst).map(|row| (row, burst_dev)));
    }
    ErasureSet::new(cells)
}

fn filled_buf(code: &dyn ErasureCode, symbol: usize, seed: u64) -> StripeBuf {
    let geom = code.geometry();
    let mut buf = StripeBuf::new(geom.r, geom.n, symbol).unwrap();
    let payload: Vec<u8> = (0..geom.data_per_stripe() * symbol)
        .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(seed) >> 3) as u8)
        .collect();
    buf.write_cells(&geom.data_cells, &payload).unwrap();
    code.encode(&mut buf).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode → erase (devices + burst) → plan → apply restores every
    /// cell, for every codec family, through the shared trait.
    #[test]
    fn all_codecs_round_trip_within_coverage(seed in any::<u64>()) {
        let mut rng = Lcg(seed | 1);
        for spec_text in SPECS {
            let spec: CodecSpec = spec_text.parse().unwrap();
            let code = build_codec(&spec).unwrap();
            let buf = filled_buf(code.as_ref(), 8, seed);
            let erased = random_pattern(code.as_ref(), &mut rng);
            if erased.is_empty() {
                continue;
            }
            let mut damaged = buf.clone();
            damaged.erase(erased.cells());
            let plan = code.plan(&erased)
                .unwrap_or_else(|e| panic!("{spec_text}: plan failed for {erased:?}: {e}"));
            code.apply(&plan, &mut damaged).unwrap();
            prop_assert_eq!(&damaged, &buf, "{}: pattern {:?}", spec_text, erased);
        }
    }

    /// Partial recovery (the degraded-read path) restores exactly the
    /// wanted cells for every codec.
    #[test]
    fn all_codecs_partial_recovery_restores_wanted_cells(seed in any::<u64>()) {
        let mut rng = Lcg(seed | 1);
        for spec_text in SPECS {
            let spec: CodecSpec = spec_text.parse().unwrap();
            let code = build_codec(&spec).unwrap();
            let buf = filled_buf(code.as_ref(), 8, seed ^ 0xDEAD);
            let erased = random_pattern(code.as_ref(), &mut rng);
            if erased.is_empty() {
                continue;
            }
            let wanted = [erased.cells()[rng.below(erased.len())]];
            let mut damaged = buf.clone();
            damaged.erase(erased.cells());
            let plan = code.plan_recover(&erased, &wanted).unwrap();
            code.apply(&plan, &mut damaged).unwrap();
            prop_assert_eq!(
                damaged.cell(wanted[0]),
                buf.cell(wanted[0]),
                "{}: wanted {:?} of {:?}",
                spec_text,
                wanted,
                erased
            );
        }
    }

    /// The parity-delta update path equals a full re-encode of the
    /// updated payload, for every codec.
    #[test]
    fn all_codecs_update_equals_reencode(seed in any::<u64>(), fill in any::<u8>()) {
        let mut rng = Lcg(seed | 1);
        for spec_text in SPECS {
            let spec: CodecSpec = spec_text.parse().unwrap();
            let code = build_codec(&spec).unwrap();
            let geom = code.geometry();
            let mut buf = filled_buf(code.as_ref(), 8, seed ^ 0xBEEF);
            let cell = geom.data_cells[rng.below(geom.data_cells.len())];
            let touched = code.update(&mut buf, cell, &[fill; 8]).unwrap();
            prop_assert!(!touched.is_empty() || geom.parity_cells.is_empty());
            let mut reference = StripeBuf::new(geom.r, geom.n, 8).unwrap();
            reference
                .write_cells(&geom.data_cells, &buf.read_cells(&geom.data_cells))
                .unwrap();
            code.encode(&mut reference).unwrap();
            prop_assert_eq!(&buf, &reference, "{}: update {:?}", spec_text, cell);
        }
    }
}
