//! End-to-end acceptance test for the stripe-store engine: write a
//! multi-stripe dataset, kill `m` devices *and* inject a sector burst,
//! assert degraded reads return the original bytes, repair online, and
//! assert post-repair reads and a final scrub are clean.

use std::path::PathBuf;

use stair_store::{Error, StoreOptions, StripeStore};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stair-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + 17) % 251) as u8).collect()
}

#[test]
fn degraded_reads_and_online_repair_round_trip() {
    let dir = tmpdir("main");
    let opts = StoreOptions {
        code: "stair:8,4,2,1-1-2".parse().unwrap(),
        symbol: 128,
        stripes: 24,
    };
    let store = StripeStore::create(&dir, &opts).unwrap();
    let data = payload(store.capacity() as usize);
    store.write_at(0, &data).unwrap();

    // Kill m = 2 whole devices and corrupt a 2-sector burst in a third.
    store.fail_device(3).unwrap();
    store.fail_device(6).unwrap();
    store.corrupt_sectors(1, 10, 2, 2).unwrap();

    // Degraded reads: full sweep and unaligned windows, all original.
    assert_eq!(store.read_at(0, data.len()).unwrap(), data);
    for (off, len) in [(0u64, 1usize), (1000, 4096), (store.capacity() - 7, 7)] {
        assert_eq!(
            store.read_at(off, len).unwrap(),
            data[off as usize..off as usize + len].to_vec()
        );
    }

    // Writes continue against the degraded array.
    let patch = payload(300);
    store.write_at(5000, &patch).unwrap();
    let mut expected = data.clone();
    expected[5000..5300].copy_from_slice(&patch);
    assert_eq!(store.read_at(0, expected.len()).unwrap(), expected);

    // Online repair brings the array back; a scrub then reports clean.
    let report = store.repair(4).unwrap();
    assert!(report.complete(), "{report:?}");
    assert_eq!(report.devices_replaced, vec![3, 6]);
    let scrub = store.scrub(4).unwrap();
    assert!(scrub.clean(), "{scrub:?}");
    assert_eq!(store.read_at(0, expected.len()).unwrap(), expected);

    // Reopening from disk sees the same bytes (metadata, checksums, and
    // device files are all persistent).
    drop(store);
    let store = StripeStore::open(&dir).unwrap();
    assert_eq!(store.read_at(0, expected.len()).unwrap(), expected);
    assert!(store.status().failed_devices.is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mixed_read_write_under_injected_failures() {
    let dir = tmpdir("mixed");
    let opts = StoreOptions {
        code: "stair:6,4,1,2".parse().unwrap(),
        symbol: 64,
        stripes: 40,
    };
    let store = StripeStore::create(&dir, &opts).unwrap();
    let data = payload(store.capacity() as usize);
    store.write_at(0, &data).unwrap();
    store.fail_device(2).unwrap();

    // Concurrent foreground traffic: readers verify while writers patch
    // disjoint regions, all against the degraded array, while a repair
    // pass runs underneath.
    let cap = store.capacity() as usize;
    let region = cap / 4;
    crossbeam::thread::scope(|scope| {
        let repair_store = store.clone();
        let repair = scope.spawn(move |_| repair_store.repair(2).unwrap());

        let mut writers = Vec::new();
        for w in 0..2 {
            let store = store.clone();
            writers.push(scope.spawn(move |_| {
                // Writers own disjoint quarters: [0, region) and [region, 2·region).
                let base = w * region;
                let patch = vec![0xB0 + w as u8; 512];
                for i in 0..8 {
                    let off = base + (i * 731) % (region - patch.len());
                    store.write_at(off as u64, &patch).unwrap();
                }
            }));
        }
        // Readers cover the untouched back half.
        let reader_store = store.clone();
        let expected = &data;
        let reads = scope.spawn(move |_| {
            for i in 0..16 {
                let off = 2 * region + (i * 977) % (region - 600);
                let got = reader_store.read_at(off as u64, 600).unwrap();
                assert_eq!(got, expected[off..off + 600].to_vec());
            }
        });
        for w in writers {
            w.join().expect("writer");
        }
        reads.join().expect("reader");
        assert!(repair.join().expect("repair").complete());
    })
    .unwrap();

    // Full verification after the dust settles: back half original, and
    // the array is healthy.
    let back = store.read_at(2 * region as u64, cap - 2 * region).unwrap();
    assert_eq!(back, data[2 * region..].to_vec());
    assert!(store.scrub(2).unwrap().clean());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The acceptance sequence of the codec-generic store, run for every
/// codec family: write → fail devices (+ corrupt sectors where the code
/// covers them) → degraded read returns the original bytes → online
/// repair → clean scrub → reopen from disk.
#[test]
fn every_codec_family_survives_the_same_e2e_sequence() {
    // A sector burst to inject: (dev, stripe, row, burst_len).
    type Burst = (usize, usize, usize, usize);
    let scenarios: &[(&str, &[usize], Option<Burst>)] = &[
        // STAIR: m = 2 devices plus a 2-sector burst (within e = (1,1,2)).
        ("stair:8,4,2,1-1-2", &[3, 6], Some((1, 5, 2, 2))),
        // SD: m = 1 device plus a 2-sector burst (within s = 2).
        ("sd:6,4,1,2", &[5], Some((1, 2, 1, 2))),
        // RS: m = 2 devices; one extra corrupt sector still leaves every
        // row with ≤ m erasures when only one device is down.
        ("rs:6,4,2", &[4], Some((1, 3, 2, 1))),
    ];
    for &(spec, failures, burst) in scenarios {
        let dir = tmpdir(&format!("codec-{}", spec.replace([':', ','], "-")));
        let opts = StoreOptions {
            code: spec.parse().unwrap(),
            symbol: 64,
            stripes: 8,
        };
        let store = StripeStore::create(&dir, &opts).unwrap();
        let data = payload(store.capacity() as usize);
        store.write_at(0, &data).unwrap();

        // Small writes exercise the per-codec parity-delta path too.
        let patch = payload(100);
        let report = store.write_at(10, &patch).unwrap();
        assert!(report.delta_updates > 0, "{spec}: no delta updates");
        assert!(
            report.parity_sectors_patched > 0,
            "{spec}: no parities patched"
        );
        let mut expected = data.clone();
        expected[10..110].copy_from_slice(&patch);

        for &dev in failures {
            store.fail_device(dev).unwrap();
        }
        if let Some((dev, stripe, row, len)) = burst {
            store.corrupt_sectors(dev, stripe, row, len).unwrap();
        }
        assert_eq!(
            store.read_at(0, expected.len()).unwrap(),
            expected,
            "{spec}: degraded read"
        );

        let report = store.repair(3).unwrap();
        assert!(report.complete(), "{spec}: {report:?}");
        assert_eq!(report.devices_replaced, failures.to_vec(), "{spec}");
        let scrub = store.scrub(3).unwrap();
        assert!(scrub.clean(), "{spec}: {scrub:?}");
        assert_eq!(
            store.read_at(0, expected.len()).unwrap(),
            expected,
            "{spec}: post-repair read"
        );

        drop(store);
        let store = StripeStore::open(&dir).unwrap();
        assert_eq!(store.codec_spec().to_string(), spec);
        assert_eq!(
            store.read_at(0, expected.len()).unwrap(),
            expected,
            "{spec}: reopened read"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn damage_beyond_coverage_surfaces_as_unrecoverable() {
    let dir = tmpdir("beyond");
    let opts = StoreOptions {
        code: "stair:6,4,1,1".parse().unwrap(),
        symbol: 64,
        stripes: 4,
    };
    let store = StripeStore::create(&dir, &opts).unwrap();
    let data = payload(store.capacity() as usize);
    store.write_at(0, &data).unwrap();
    store.fail_device(0).unwrap();
    store.fail_device(1).unwrap(); // m = 1: two lost devices exceed coverage

    match store.read_at(0, 64) {
        Err(Error::Unrecoverable { .. }) => {}
        other => panic!("expected Unrecoverable, got {other:?}"),
    }
    // Repair reports the lost stripes instead of erroring out.
    let report = store.repair(2).unwrap();
    assert!(!report.complete());
    assert_eq!(report.unrecoverable_stripes, vec![0, 1, 2, 3]);
    std::fs::remove_dir_all(&dir).unwrap();
}
