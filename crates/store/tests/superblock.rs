//! Superblock versioning, exercised end to end through the store —
//! previously only covered implicitly by unit tests in `meta.rs`.
//!
//! * a freshly created store writes a v2 `codec <spec>` superblock that
//!   round-trips through `open` for every codec family;
//! * a hand-written legacy v1 superblock (separate `n`/`r`/`m`/`e`
//!   keys, as PR 1 stores wrote them) still opens, maps onto the
//!   equivalent `stair:` spec, and serves the data beneath it;
//! * malformed superblocks are rejected with a metadata error rather
//!   than a panic or a misconfigured store.

use std::path::PathBuf;

use stair_store::{Error, StoreMeta, StoreOptions, StripeStore};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stair-superblock-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(29).wrapping_add(seed))
        .collect()
}

#[test]
fn v2_superblock_round_trips_for_every_codec_family() {
    for spec in ["stair:8,4,2,1-1-2", "sd:8,4,2,3", "rs:6,4,2"] {
        let dir = tmpdir(&format!("v2-{}", spec.split(':').next().unwrap()));
        let opts = StoreOptions {
            code: spec.parse().unwrap(),
            symbol: 64,
            stripes: 4,
        };
        let store = StripeStore::create(&dir, &opts).unwrap();
        let payload = pattern(store.capacity() as usize, 5);
        store.write_at(0, &payload).unwrap();
        drop(store);

        // The superblock on disk is v2 and names the codec spec.
        let text = std::fs::read_to_string(dir.join("store.meta")).unwrap();
        assert!(text.starts_with("stair-store v2\n"), "{text}");
        assert!(text.contains(&format!("codec {spec}")), "{text}");

        // Reopen: same codec, same data.
        let store = StripeStore::open(&dir).unwrap();
        assert_eq!(store.codec_spec().to_string(), spec);
        assert_eq!(store.read_at(0, payload.len()).unwrap(), payload);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn handwritten_legacy_v1_superblock_opens_as_stair() {
    // Build a store whose geometry matches the fixture, then swap in a
    // hand-written v1 superblock exactly as PR 1 serialized it.
    let dir = tmpdir("v1");
    let opts = StoreOptions {
        code: "stair:8,4,2,1-1-2".parse().unwrap(),
        symbol: 64,
        stripes: 6,
    };
    let store = StripeStore::create(&dir, &opts).unwrap();
    let payload = pattern(store.capacity() as usize, 11);
    store.write_at(0, &payload).unwrap();
    drop(store);

    let v1 = "stair-store v1\nn 8\nr 4\nm 2\ne 1,1,2\nsymbol 64\nstripes 6\n";
    std::fs::write(dir.join("store.meta"), v1).unwrap();

    let store = StripeStore::open(&dir).unwrap();
    assert_eq!(store.codec_spec().to_string(), "stair:8,4,2,1-1-2");
    assert_eq!(store.read_at(0, payload.len()).unwrap(), payload);
    // A legacy store keeps working end to end: degrade it and read back.
    store.fail_device(3).unwrap();
    assert_eq!(store.read_at(0, payload.len()).unwrap(), payload);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn v1_fixture_parses_with_field_reordering_and_blank_lines() {
    let text = "stair-store v1\n\nstripes 6\ne 1,1,2\nm 2\nr 4\nn 8\n\nsymbol 64\n";
    let meta = StoreMeta::parse(text).unwrap();
    assert_eq!(meta.codec.to_string(), "stair:8,4,2,1-1-2");
    assert_eq!((meta.symbol, meta.stripes), (64, 6));
    // And it re-serializes as v2.
    assert!(meta.to_text().starts_with("stair-store v2\n"));
}

#[test]
fn malformed_superblocks_are_rejected_not_panicked() {
    let cases = [
        // v1 missing a required field.
        "stair-store v1\nn 8\nr 4\nm 2\nsymbol 64\nstripes 6\n",
        // v1 with an unknown key.
        "stair-store v1\nn 8\nr 4\nm 2\ne 1,1,2\nsymbol 64\nstripes 6\nshiny yes\n",
        // v2 with a spec naming an impossible codec.
        "stair-store v2\ncodec stair:8,4,2,100\nsymbol 64\nstripes 6\n",
        // v2 with a garbage integer.
        "stair-store v2\ncodec rs:6,4,2\nsymbol sixty-four\nstripes 6\n",
        // Unknown version.
        "stair-store v9\ncodec rs:6,4,2\nsymbol 64\nstripes 6\n",
        // Empty file.
        "",
    ];
    for text in cases {
        assert!(StoreMeta::parse(text).is_err(), "accepted: {text:?}");
    }

    // Through the store: a corrupted superblock fails open cleanly.
    let dir = tmpdir("corrupt");
    let store = StripeStore::create(
        &dir,
        &StoreOptions {
            code: "rs:6,4,2".parse().unwrap(),
            symbol: 64,
            stripes: 4,
        },
    )
    .unwrap();
    drop(store);
    std::fs::write(dir.join("store.meta"), "not a superblock\n").unwrap();
    match StripeStore::open(&dir) {
        Err(Error::Meta(_)) => {}
        Err(other) => panic!("expected Meta error, got {other:?}"),
        Ok(_) => panic!("corrupted superblock must not open"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
