//! Superblock versioning, exercised end to end through the store —
//! previously only covered implicitly by unit tests in `meta.rs`.
//!
//! * a freshly created store writes a v3 superblock (codec spec +
//!   journal geometry + `clean_shutdown`) that round-trips through
//!   `open` for every codec family;
//! * hand-written v1 and v2 fixtures (exactly as PR 1 / PR 2 stores
//!   wrote them) still open end to end, adopt journal defaults, and
//!   are upgraded to v3 in place on first open;
//! * the `clean_shutdown` flag follows the open/close lifecycle;
//! * malformed superblocks are rejected with a metadata error rather
//!   than a panic or a misconfigured store.

use std::path::PathBuf;

use stair_store::{Error, StoreMeta, StoreOptions, StripeStore, DEFAULT_JOURNAL_SEGMENT};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stair-superblock-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(29).wrapping_add(seed))
        .collect()
}

#[test]
fn v3_superblock_round_trips_for_every_codec_family() {
    for spec in ["stair:8,4,2,1-1-2", "sd:8,4,2,3", "rs:6,4,2"] {
        let dir = tmpdir(&format!("v3-{}", spec.split(':').next().unwrap()));
        let opts = StoreOptions {
            code: spec.parse().unwrap(),
            symbol: 64,
            stripes: 4,
        };
        let store = StripeStore::create(&dir, &opts).unwrap();
        let payload = pattern(store.capacity() as usize, 5);
        store.write_at(0, &payload).unwrap();
        // While open, the on-disk superblock is v3 and marked live.
        let text = std::fs::read_to_string(dir.join("store.meta")).unwrap();
        assert!(text.starts_with("stair-store v3\n"), "{text}");
        assert!(text.contains(&format!("codec {spec}")), "{text}");
        assert!(text.contains("journal_segment "), "{text}");
        assert!(text.contains("clean_shutdown 0\n"), "{text}");
        drop(store);

        // A clean close flips the flag on disk.
        let text = std::fs::read_to_string(dir.join("store.meta")).unwrap();
        assert!(text.contains("clean_shutdown 1\n"), "{text}");

        // Reopen: same codec, same data, clean shutdown observed.
        let store = StripeStore::open(&dir).unwrap();
        assert_eq!(store.codec_spec().to_string(), spec);
        assert_eq!(store.read_at(0, payload.len()).unwrap(), payload);
        let status = store.status();
        assert!(status.clean_shutdown);
        assert_eq!(status.replayed_records, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The cross-version matrix: every historical superblock version opens
/// the same underlying store end to end and upgrades to v3 in place.
#[test]
fn superblock_version_matrix_opens_end_to_end() {
    let v1 = "stair-store v1\nn 8\nr 4\nm 2\ne 1,1,2\nsymbol 64\nstripes 6\n";
    let v2 = "stair-store v2\ncodec stair:8,4,2,1-1-2\nsymbol 64\nstripes 6\n";
    let v3 = "stair-store v3\ncodec stair:8,4,2,1-1-2\nsymbol 64\nstripes 6\n\
              journal_segment 1048576\nclean_shutdown 1\n";
    for (version, fixture) in [("v1", v1), ("v2", v2), ("v3", v3)] {
        let dir = tmpdir(&format!("matrix-{version}"));
        let opts = StoreOptions {
            code: "stair:8,4,2,1-1-2".parse().unwrap(),
            symbol: 64,
            stripes: 6,
        };
        let store = StripeStore::create(&dir, &opts).unwrap();
        let payload = pattern(store.capacity() as usize, 11);
        store.write_at(0, &payload).unwrap();
        drop(store);

        // Swap in the hand-written fixture and open through it.
        std::fs::write(dir.join("store.meta"), fixture).unwrap();
        let store = StripeStore::open(&dir).unwrap();
        assert_eq!(store.codec_spec().to_string(), "stair:8,4,2,1-1-2");
        assert_eq!(store.read_at(0, payload.len()).unwrap(), payload);
        let status = store.status();
        // v1/v2 predate the journal: vacuously clean. The v3 fixture
        // says clean explicitly.
        assert!(status.clean_shutdown, "{version}");
        assert_eq!(status.replayed_records, 0, "{version}");
        // Legacy stores keep working degraded, too.
        store.fail_device(3).unwrap();
        assert_eq!(store.read_at(0, payload.len()).unwrap(), payload);
        drop(store);

        // First open rewrote the superblock as v3 (journal defaults
        // adopted for v1/v2, fixture capacity kept for v3).
        let meta = StoreMeta::load(&dir).unwrap();
        let text = std::fs::read_to_string(dir.join("store.meta")).unwrap();
        assert!(text.starts_with("stair-store v3\n"), "{version}: {text}");
        match version {
            "v3" => assert_eq!(meta.journal_segment, 1_048_576),
            _ => assert_eq!(meta.journal_segment, DEFAULT_JOURNAL_SEGMENT),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn crash_marked_superblock_reports_unclean_until_next_close() {
    let dir = tmpdir("unclean");
    let opts = StoreOptions {
        code: "rs:6,4,2".parse().unwrap(),
        symbol: 64,
        stripes: 4,
    };
    let store = StripeStore::create(&dir, &opts).unwrap();
    store.write_at(0, &pattern(256, 9)).unwrap();
    // Simulate a crash: capture the live (clean_shutdown 0) superblock
    // and restore it after the clean drop.
    let live = std::fs::read_to_string(dir.join("store.meta")).unwrap();
    assert!(live.contains("clean_shutdown 0\n"));
    drop(store);
    std::fs::write(dir.join("store.meta"), &live).unwrap();

    let store = StripeStore::open(&dir).unwrap();
    assert!(!store.status().clean_shutdown, "crash must be observed");
    drop(store);

    // The clean close re-marks it; the next open sees a clean store.
    let store = StripeStore::open(&dir).unwrap();
    assert!(store.status().clean_shutdown);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn v1_fixture_parses_with_field_reordering_and_blank_lines() {
    let text = "stair-store v1\n\nstripes 6\ne 1,1,2\nm 2\nr 4\nn 8\n\nsymbol 64\n";
    let meta = StoreMeta::parse(text).unwrap();
    assert_eq!(meta.codec.to_string(), "stair:8,4,2,1-1-2");
    assert_eq!((meta.symbol, meta.stripes), (64, 6));
    assert_eq!(meta.journal_segment, DEFAULT_JOURNAL_SEGMENT);
    assert!(meta.clean_shutdown);
    // And it re-serializes as v3.
    assert!(meta.to_text().starts_with("stair-store v3\n"));
}

#[test]
fn malformed_superblocks_are_rejected_not_panicked() {
    let cases = [
        // v1 missing a required field.
        "stair-store v1\nn 8\nr 4\nm 2\nsymbol 64\nstripes 6\n",
        // v1 with an unknown key.
        "stair-store v1\nn 8\nr 4\nm 2\ne 1,1,2\nsymbol 64\nstripes 6\nshiny yes\n",
        // v2 with a spec naming an impossible codec.
        "stair-store v2\ncodec stair:8,4,2,100\nsymbol 64\nstripes 6\n",
        // v2 with a garbage integer.
        "stair-store v2\ncodec rs:6,4,2\nsymbol sixty-four\nstripes 6\n",
        // v2 carrying v3-only journal keys (mis-tagged version).
        "stair-store v2\ncodec rs:6,4,2\nsymbol 64\nstripes 6\njournal_segment 4096\n",
        // v3 with a garbage clean_shutdown flag.
        "stair-store v3\ncodec rs:6,4,2\nsymbol 64\nstripes 6\nclean_shutdown maybe\n",
        // Unknown version.
        "stair-store v9\ncodec rs:6,4,2\nsymbol 64\nstripes 6\n",
        // Empty file.
        "",
    ];
    for text in cases {
        assert!(StoreMeta::parse(text).is_err(), "accepted: {text:?}");
    }

    // Through the store: a corrupted superblock fails open cleanly.
    let dir = tmpdir("corrupt");
    let store = StripeStore::create(
        &dir,
        &StoreOptions {
            code: "rs:6,4,2".parse().unwrap(),
            symbol: 64,
            stripes: 4,
        },
    )
    .unwrap();
    drop(store);
    std::fs::write(dir.join("store.meta"), "not a superblock\n").unwrap();
    match StripeStore::open(&dir) {
        Err(Error::Meta(_)) => {}
        Err(other) => panic!("expected Meta error, got {other:?}"),
        Ok(_) => panic!("corrupted superblock must not open"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
