//! `stair-cache`: a tiered cache composable over any [`BlockDevice`].
//!
//! Erasure-coded reads are expensive — every miss pays checksum
//! verification, possibly degraded reconstruction, and (over `tcp:`) a
//! round trip — and small writes pay a parity update per touched
//! stripe. This crate puts two tiers in front of whatever
//! `open_device()` returned:
//!
//! * **Read tier** — a block-granular CLOCK cache under a fixed byte
//!   budget. Fills happen on miss from the (always verified) inner
//!   read path and are checksummed in memory, so a corrupted frame is
//!   detected and refilled rather than served. Writes invalidate the
//!   blocks they touch; scrub, repair, and fault injection bump a
//!   generation counter that lazily drops every frame (reads after a
//!   repair always see reconstructed data, never a stale frame).
//! * **Write-back tier** (optional, `wb=on`) — full-block staging with
//!   group commit: absorbed writes are acknowledged immediately and
//!   drained as one coalesced [`IoBatch`] when the group-commit
//!   interval elapses, when buffered blocks cross the pressure
//!   threshold, or synchronously on [`flush`](BlockDevice::flush).
//!   Coalescing turns N single-block writes to a stripe into one
//!   submit, so the store makes one re-encode-vs-parity-delta decision
//!   instead of N.
//!
//! # Ack semantics
//!
//! Write-through (the default) acknowledges a write only after the
//! inner device has: durability is exactly the inner device's. With
//! `wb=on`, a write is acknowledged once staged — **volatile until the
//! next drain**. A crash loses at most the unflushed window (bounded
//! by the interval and the pressure threshold) of *whole acknowledged
//! writes*; it never tears one, because drains go through the inner
//! device's journalled batch path. Callers needing durability call
//! `flush()`, which drains synchronously before flushing the inner
//! device.
//!
//! # Coherence
//!
//! Reads consult the staged write tier first, then the read tier, then
//! the inner device; a read issued after an acknowledged write always
//! returns that write's data. The clock lock is held across miss
//! fills, and writers invalidate *after* the inner write completes, so
//! a fill can never resurrect pre-write data. The tier is
//! process-local: it must be the **only** writer to the inner device
//! (a second client writing underneath it will be served stale reads
//! until the next generation bump), which is the same single-owner
//! contract the stripe store itself has.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

use stair_device::{
    seed_results, BatchResult, BlockDevice, CacheTierStatus, DeviceError, DeviceStatus, FaultAdmin,
    IoBatch, IoOp, OpResult, RepairOutcome, ScrubOutcome, WriteOutcome, CACHE_DEFAULT_INTERVAL_MS,
    CACHE_DEFAULT_MB,
};
use stair_obs::trace::{self, names};
use stair_obs::{metric_names, Counter, MetricsRegistry, MetricsSnapshot};

/// Configuration for a [`CachedDevice`], mirroring the
/// `cache:<inner>?mb=&wb=&interval_ms=` spec keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Read-tier budget in bytes.
    pub budget_bytes: u64,
    /// Enable the write-back tier (`false` = write-through).
    pub write_back: bool,
    /// Group-commit interval for the write-back drain thread in
    /// milliseconds; `0` disables the timer (drains happen only on
    /// pressure or `flush()`).
    pub interval_ms: u64,
}

impl CacheConfig {
    /// Builds a config from the spec-grammar units (budget in MiB).
    pub fn from_spec(mb: usize, write_back: bool, interval_ms: u64) -> Self {
        CacheConfig {
            budget_bytes: (mb as u64) << 20,
            write_back,
            interval_ms,
        }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::from_spec(CACHE_DEFAULT_MB, false, CACHE_DEFAULT_INTERVAL_MS)
    }
}

/// One read-tier frame: a cached block plus the metadata that decides
/// whether it may be served.
struct Frame {
    /// Block index this frame holds.
    block: u64,
    /// Generation the block was filled under; served only while it
    /// matches the device's current generation.
    gen: u64,
    /// In-memory checksum of `data`, verified on every hit so a
    /// corrupted frame demotes to a miss instead of returning garbage.
    sum: u32,
    /// Second-chance bit for the CLOCK hand.
    referenced: bool,
    /// `false` once invalidated; the slot is preferred for reuse.
    live: bool,
    /// The cached bytes (one block; the device tail may be shorter).
    data: Vec<u8>,
}

/// The CLOCK read tier: a bounded frame table plus the block → frame
/// index map and the sweep hand.
struct Clock {
    frames: Vec<Frame>,
    map: HashMap<u64, usize>,
    hand: usize,
}

/// The write-back tier: staged full blocks awaiting a group commit.
struct Wb {
    staged: Mutex<BTreeMap<u64, Vec<u8>>>,
    /// Paired with `tick` so `flush()`/drop can wake the drain thread.
    stop: Mutex<bool>,
    tick: Condvar,
    /// Staged-block count that triggers an inline drain.
    pressure: usize,
    interval_ms: u64,
}

/// Shared state between the device handle and the drain thread.
struct Core<D> {
    inner: D,
    block: usize,
    capacity: u64,
    max_frames: usize,
    budget_bytes: u64,
    gen: AtomicU64,
    clock: Mutex<Clock>,
    wb: Option<Wb>,
    registry: Arc<MetricsRegistry>,
    hit: Counter,
    miss: Counter,
    fill: Counter,
    evict: Counter,
    invalidate: Counter,
    absorbed: Counter,
    flushed: Counter,
    coalesced: Counter,
}

/// A tiered cache in front of any [`BlockDevice`] — the `cache:`
/// backend of the device spec grammar.
///
/// All methods take `&self` and the wrapper is `Send + Sync`, so it
/// composes anywhere the inner device did (including behind
/// `Arc<dyn BlockDevice>`). Dropping the wrapper stops the drain
/// thread and performs a best-effort final drain; call
/// [`flush`](BlockDevice::flush) first when write-back durability
/// matters.
pub struct CachedDevice<D: BlockDevice> {
    core: Arc<Core<D>>,
    flusher: Option<thread::JoinHandle<()>>,
}

/// Locks a mutex, adopting the data on poison — a panicked peer
/// cannot leave the tier wedged.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// FNV-1a over a frame's bytes: cheap in-memory corruption detection
/// for cached data (the inner device owns on-disk integrity).
fn checksum(data: &[u8]) -> u32 {
    let mut h = 0x811C_9DC5u32;
    for &byte in data {
        h ^= byte as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Copies the overlap between a block at `block_off` and the request
/// window starting at `req_off` into `out`.
fn copy_overlap(out: &mut [u8], req_off: u64, block_off: u64, data: &[u8]) {
    let req_end = req_off + out.len() as u64;
    let blk_end = block_off + data.len() as u64;
    let start = req_off.max(block_off);
    let end = req_end.min(blk_end);
    if start < end {
        out[(start - req_off) as usize..(end - req_off) as usize]
            .copy_from_slice(&data[(start - block_off) as usize..(end - block_off) as usize]);
    }
}

impl<D: BlockDevice + 'static> CachedDevice<D> {
    /// Wraps `inner` with the given tiers, spawning the group-commit
    /// drain thread when write-back is on and the interval is nonzero.
    pub fn new(inner: D, config: CacheConfig) -> Self {
        let block = inner.block_size().max(1);
        let capacity = inner.capacity();
        let max_frames = ((config.budget_bytes / block as u64) as usize).max(1);
        let registry = Arc::new(MetricsRegistry::new());
        let wb = config.write_back.then(|| Wb {
            staged: Mutex::new(BTreeMap::new()),
            stop: Mutex::new(false),
            tick: Condvar::new(),
            pressure: (max_frames / 2).max(8),
            interval_ms: config.interval_ms,
        });
        let core = Arc::new(Core {
            inner,
            block,
            capacity,
            max_frames,
            budget_bytes: config.budget_bytes,
            gen: AtomicU64::new(0),
            clock: Mutex::new(Clock {
                frames: Vec::new(),
                map: HashMap::new(),
                hand: 0,
            }),
            wb,
            hit: registry.counter(metric_names::CACHE_HIT),
            miss: registry.counter(metric_names::CACHE_MISS),
            fill: registry.counter(metric_names::CACHE_FILL),
            evict: registry.counter(metric_names::CACHE_EVICT),
            invalidate: registry.counter(metric_names::CACHE_INVALIDATE),
            absorbed: registry.counter(metric_names::WB_ABSORBED),
            flushed: registry.counter(metric_names::WB_FLUSHED),
            coalesced: registry.counter(metric_names::WB_COALESCED),
            registry,
        });
        let flusher = match &core.wb {
            Some(wb) if wb.interval_ms > 0 => {
                let core = Arc::clone(&core);
                Some(thread::spawn(move || core.drain_loop()))
            }
            _ => None,
        };
        CachedDevice { core, flusher }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.core.inner
    }

    /// The tier's own metrics registry (`cache.*` / `wb.*` counters).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.core.registry
    }
}

impl<D: BlockDevice> Drop for CachedDevice<D> {
    fn drop(&mut self) {
        if let Some(wb) = &self.core.wb {
            *lock(&wb.stop) = true;
            wb.tick.notify_all();
        }
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
        // Best effort: an unreachable inner device at drop time loses
        // the staged window, which is exactly the documented wb
        // contract. `flush()` is the durable path.
        let _ = self.core.drain();
    }
}

impl<D: BlockDevice> Core<D> {
    /// The group-commit loop: drain every `interval_ms` until stopped.
    fn drain_loop(&self) {
        let Some(wb) = &self.wb else { return };
        let mut stopped = lock(&wb.stop);
        while !*stopped {
            let (guard, _) = wb
                .tick
                .wait_timeout(stopped, Duration::from_millis(wb.interval_ms))
                .unwrap_or_else(|e| e.into_inner());
            stopped = guard;
            if *stopped {
                return;
            }
            drop(stopped);
            // Errors leave the blocks staged; the next tick retries.
            let _ = self.drain();
            stopped = lock(&wb.stop);
        }
    }

    /// Byte length of block `b` (the device tail may be shorter).
    fn block_len(&self, b: u64) -> usize {
        let start = b * self.block as u64;
        (self.capacity.saturating_sub(start)).min(self.block as u64) as usize
    }

    /// Serves a block from the read tier, verifying generation and
    /// checksum; a frame failing either demotes to a miss.
    fn lookup(clock: &mut Clock, b: u64, gen: u64) -> Option<&[u8]> {
        let idx = *clock.map.get(&b)?;
        let frame = &mut clock.frames[idx];
        if !frame.live || frame.gen != gen || checksum(&frame.data) != frame.sum {
            frame.live = false;
            clock.map.remove(&b);
            return None;
        }
        frame.referenced = true;
        Some(&clock.frames[idx].data)
    }

    /// Installs `data` as block `b`'s frame, evicting via CLOCK when
    /// the table is full. Dead and stale-generation frames are
    /// preferred victims and don't count as evictions.
    fn insert_frame(&self, clock: &mut Clock, b: u64, gen: u64, data: Vec<u8>) {
        let sum = checksum(&data);
        if let Some(&idx) = clock.map.get(&b) {
            let frame = &mut clock.frames[idx];
            frame.data = data;
            frame.sum = sum;
            frame.gen = gen;
            frame.referenced = true;
            frame.live = true;
            return;
        }
        if clock.frames.len() < self.max_frames {
            clock.map.insert(b, clock.frames.len());
            clock.frames.push(Frame {
                block: b,
                gen,
                sum,
                referenced: true,
                live: true,
                data,
            });
            return;
        }
        let n = clock.frames.len();
        let current = self.gen.load(Ordering::Acquire);
        let mut victim = clock.hand;
        // Two sweeps suffice: the first clears every referenced bit.
        for _ in 0..=2 * n {
            let idx = clock.hand;
            clock.hand = (clock.hand + 1) % n;
            let frame = &mut clock.frames[idx];
            if !frame.live || frame.gen != current {
                victim = idx;
                break;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            self.evict.inc();
            victim = idx;
            break;
        }
        let old = clock.frames[victim].block;
        if clock.map.get(&old) == Some(&victim) {
            clock.map.remove(&old);
        }
        clock.frames[victim] = Frame {
            block: b,
            gen,
            sum,
            referenced: true,
            live: true,
            data,
        };
        clock.map.insert(b, victim);
    }

    /// The cached read path. Consults staged writes, then the read
    /// tier, then fills coalesced miss runs from the inner device
    /// under the clock lock (so a concurrent writer's invalidation
    /// always lands after the fill it must kill).
    fn read_cached(&self, offset: u64, len: usize) -> Result<Vec<u8>, DeviceError> {
        let end = offset.checked_add(len as u64);
        if len == 0 || end.is_none() || end.unwrap_or(u64::MAX) > self.capacity {
            // Forward so out-of-range errors keep the inner device's
            // exact text and variant.
            return self.inner.read_at(offset, len);
        }
        let block = self.block as u64;
        let (b0, b1) = (offset / block, (offset + len as u64 - 1) / block);
        let gen = self.gen.load(Ordering::Acquire);
        let mut out = vec![0u8; len];
        let staged = self.wb.as_ref().map(|wb| lock(&wb.staged));
        let mut clock = lock(&self.clock);
        let mut missing: Vec<u64> = Vec::new();
        for b in b0..=b1 {
            if let Some(data) = staged.as_ref().and_then(|s| s.get(&b)) {
                copy_overlap(&mut out, offset, b * block, data);
                self.hit.inc();
            } else if let Some(data) = Self::lookup(&mut clock, b, gen) {
                copy_overlap(&mut out, offset, b * block, data);
                self.hit.inc();
            } else {
                self.miss.inc();
                missing.push(b);
            }
        }
        if !missing.is_empty() {
            let mut span = trace::span_or_root(names::CACHE_FILL);
            let mut filled = 0u64;
            let mut i = 0;
            while i < missing.len() {
                let start = missing[i];
                let mut last = start;
                while i + 1 < missing.len() && missing[i + 1] == last + 1 {
                    i += 1;
                    last += 1;
                }
                i += 1;
                let run_off = start * block;
                let run_len = (((last + 1) * block).min(self.capacity) - run_off) as usize;
                let data = match self.inner.read_at(run_off, run_len) {
                    Ok(data) => data,
                    Err(e) => {
                        span.fail();
                        return Err(e);
                    }
                };
                filled += data.len() as u64;
                for b in start..=last {
                    let lo = ((b - start) * block) as usize;
                    let hi = (lo + self.block).min(data.len());
                    let piece = data[lo..hi].to_vec();
                    copy_overlap(&mut out, offset, b * block, &piece);
                    self.fill.inc();
                    self.insert_frame(&mut clock, b, gen, piece);
                }
            }
            span.set_bytes(filled);
        }
        Ok(out)
    }

    /// Drops the read-tier frames a write span covers. Runs *after*
    /// the inner write, pairing with fills that hold the clock lock:
    /// a stale fill is always invalidated, never resurrected.
    fn invalidate_span(&self, offset: u64, len: usize) {
        if len == 0 {
            return;
        }
        let block = self.block as u64;
        let (b0, b1) = (offset / block, (offset + len as u64 - 1) / block);
        let mut clock = lock(&self.clock);
        for b in b0..=b1 {
            if let Some(idx) = clock.map.remove(&b) {
                clock.frames[idx].live = false;
                self.invalidate.inc();
            }
        }
    }

    /// Invalidate everything in O(1): scrub, repair, and fault
    /// injection change inner data underneath the tier, so every
    /// frame's generation tag goes stale at once.
    fn bump_gen(&self) {
        let gen = self.gen.load(Ordering::Acquire);
        {
            let clock = lock(&self.clock);
            let resident = clock
                .frames
                .iter()
                .filter(|f| f.live && f.gen == gen)
                .count();
            self.invalidate.add(resident as u64);
        }
        self.gen.fetch_add(1, Ordering::AcqRel);
    }

    /// Stages a write into the wb tier as full blocks,
    /// read-modify-writing partial edge blocks from staged → cached →
    /// inner data.
    fn stage(
        &self,
        staged: &mut BTreeMap<u64, Vec<u8>>,
        offset: u64,
        data: &[u8],
    ) -> Result<(), DeviceError> {
        let block = self.block as u64;
        let mut pos = 0usize;
        let mut b = offset / block;
        while pos < data.len() {
            let bstart = b * block;
            let blen = self.block_len(b);
            let in_off = (offset + pos as u64 - bstart) as usize;
            let take = (blen - in_off).min(data.len() - pos);
            if in_off == 0 && take == blen {
                staged.insert(b, data[pos..pos + take].to_vec());
            } else {
                let mut base = match staged.get(&b) {
                    Some(existing) => existing.clone(),
                    None => {
                        let gen = self.gen.load(Ordering::Acquire);
                        let mut clock = lock(&self.clock);
                        match Self::lookup(&mut clock, b, gen) {
                            Some(cached) => cached.to_vec(),
                            None => {
                                drop(clock);
                                self.inner.read_at(bstart, blen)?
                            }
                        }
                    }
                };
                base.resize(blen, 0);
                base[in_off..in_off + take].copy_from_slice(&data[pos..pos + take]);
                staged.insert(b, base);
            }
            self.absorbed.inc();
            pos += take;
            b += 1;
        }
        Ok(())
    }

    /// Drains the wb tier (if any) as one coalesced batch.
    fn drain(&self) -> Result<(), DeviceError> {
        let Some(wb) = &self.wb else { return Ok(()) };
        let mut staged = lock(&wb.staged);
        self.drain_locked(&mut staged)
    }

    /// Drains with the staged lock held, so reads never observe a
    /// window where a block is neither staged nor written back. On
    /// error the blocks are re-staged (rewriting them is idempotent)
    /// and the error propagates.
    fn drain_locked(&self, staged: &mut BTreeMap<u64, Vec<u8>>) -> Result<(), DeviceError> {
        if staged.is_empty() {
            return Ok(());
        }
        let taken = std::mem::take(staged);
        let block = self.block as u64;
        let mut batch = IoBatch::new();
        let mut runs: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut total = 0u64;
        for (&b, data) in &taken {
            total += data.len() as u64;
            let off = b * block;
            match runs.last_mut() {
                Some((run_off, run)) if *run_off + run.len() as u64 == off => {
                    run.extend_from_slice(data)
                }
                _ => runs.push((off, data.clone())),
            }
        }
        let ops = runs.len() as u64;
        for (off, data) in runs {
            batch.write(off, data);
        }
        let mut span = trace::span_or_root(names::WB_FLUSH);
        span.set_bytes(total);
        match self.inner.submit(&batch) {
            Ok(_) => {
                self.flushed.add(taken.len() as u64);
                self.coalesced.add(ops);
                let gen = self.gen.load(Ordering::Acquire);
                let mut clock = lock(&self.clock);
                for (b, data) in taken {
                    self.insert_frame(&mut clock, b, gen, data);
                }
                Ok(())
            }
            Err(e) => {
                span.fail();
                for (b, data) in taken {
                    staged.entry(b).or_insert(data);
                }
                Err(e)
            }
        }
    }

    /// Point-in-time tier state for [`DeviceStatus`].
    fn tier_status(&self) -> CacheTierStatus {
        let wb_buffered = self.wb.as_ref().map_or(0, |wb| lock(&wb.staged).len());
        let gen = self.gen.load(Ordering::Acquire);
        let resident = {
            let clock = lock(&self.clock);
            clock
                .frames
                .iter()
                .filter(|f| f.live && f.gen == gen)
                .count()
        };
        let snap = self.registry.snapshot();
        CacheTierStatus {
            budget_bytes: self.budget_bytes,
            frames: self.max_frames,
            resident_blocks: resident,
            generation: gen,
            write_back: self.wb.is_some(),
            wb_buffered_blocks: wb_buffered,
            hits: snap.counter(metric_names::CACHE_HIT).unwrap_or(0),
            misses: snap.counter(metric_names::CACHE_MISS).unwrap_or(0),
        }
    }
}

impl<D: BlockDevice> BlockDevice for CachedDevice<D> {
    fn capacity(&self) -> u64 {
        self.core.capacity
    }

    fn block_size(&self) -> usize {
        self.core.block
    }

    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, DeviceError> {
        self.core.read_cached(offset, len)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<WriteOutcome, DeviceError> {
        let core = &self.core;
        let end = offset.checked_add(data.len() as u64);
        let in_range = !data.is_empty() && end.is_some_and(|e| e <= core.capacity);
        match &core.wb {
            Some(wb) if in_range => {
                let mut staged = lock(&wb.staged);
                core.stage(&mut staged, offset, data)?;
                if staged.len() >= wb.pressure {
                    core.drain_locked(&mut staged)?;
                }
                // Acknowledged volatile: bytes only, no stripe
                // accounting until the drain runs.
                Ok(WriteOutcome {
                    bytes: data.len() as u64,
                    ..WriteOutcome::default()
                })
            }
            _ => {
                let outcome = core.inner.write_at(offset, data);
                core.invalidate_span(offset, data.len());
                outcome
            }
        }
    }

    fn submit(&self, batch: &IoBatch) -> Result<BatchResult, DeviceError> {
        let core = &self.core;
        if batch.is_empty() || batch.has_conflicts() {
            // Conflicting batches need submission-order semantics the
            // tiers would obscure: drain staged writes so the inner
            // device sees the newest data, forward the batch whole,
            // then invalidate what its writes touched.
            core.drain()?;
            let result = core.inner.submit(batch);
            for op in batch.ops() {
                if let IoOp::Write { offset, data } = op {
                    core.invalidate_span(*offset, data.len());
                }
            }
            return result;
        }
        // Disjoint ops: reads go through the cached path one by one
        // (hits are free, misses fill); writes stage in wb mode or
        // forward as one sub-batch so the store still groups them.
        let ops = batch.ops();
        let mut results = seed_results(ops);
        let mut forward = IoBatch::new();
        let mut forward_slots: Vec<usize> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                IoOp::Read { offset, len } => {
                    results[i] = OpResult::Read(core.read_cached(*offset, *len)?);
                }
                IoOp::Write { offset, data } => {
                    let end = offset.checked_add(data.len() as u64);
                    let in_range = !data.is_empty() && end.is_some_and(|e| e <= core.capacity);
                    match &core.wb {
                        Some(wb) if in_range => {
                            let mut staged = lock(&wb.staged);
                            core.stage(&mut staged, *offset, data)?;
                            if staged.len() >= wb.pressure {
                                core.drain_locked(&mut staged)?;
                            }
                            results[i] = OpResult::Write(WriteOutcome {
                                bytes: data.len() as u64,
                                ..WriteOutcome::default()
                            });
                        }
                        _ => {
                            forward.write(*offset, data.clone());
                            forward_slots.push(i);
                        }
                    }
                }
            }
        }
        if !forward.is_empty() {
            let sub = core.inner.submit(&forward);
            for op in forward.ops() {
                core.invalidate_span(op.offset(), op.byte_len());
            }
            let sub = sub?;
            for (slot, result) in forward_slots.into_iter().zip(sub.results) {
                results[slot] = result;
            }
        }
        Ok(BatchResult::from_results(results))
    }

    fn flush(&self) -> Result<(), DeviceError> {
        self.core.drain()?;
        self.core.inner.flush()
    }

    fn status(&self) -> Result<DeviceStatus, DeviceError> {
        let mut status = self.core.inner.status()?;
        status.backend = "cache".into();
        status.cache = Some(self.core.tier_status());
        Ok(status)
    }

    fn scrub(&self, threads: usize) -> Result<ScrubOutcome, DeviceError> {
        self.core.drain()?;
        let outcome = self.core.inner.scrub(threads);
        self.core.bump_gen();
        outcome
    }

    fn repair(&self, threads: usize) -> Result<RepairOutcome, DeviceError> {
        self.core.drain()?;
        let outcome = self.core.inner.repair(threads);
        self.core.bump_gen();
        outcome
    }

    fn metrics(&self) -> Result<MetricsSnapshot, DeviceError> {
        let mut snap = self.core.registry.snapshot();
        snap.merge(&self.core.inner.metrics()?);
        Ok(snap)
    }
}

/// Fault injection passes through, but first drains staged writes
/// (so the injected fault applies to fully written-back state) and
/// then bumps the generation: the tier must not serve pre-fault data
/// that hides the fault from scrub/read paths under test.
impl<D: BlockDevice + FaultAdmin> FaultAdmin for CachedDevice<D> {
    fn fail_device(&self, shard: usize, device: usize) -> Result<(), DeviceError> {
        self.core.drain()?;
        let result = self.core.inner.fail_device(shard, device);
        self.core.bump_gen();
        result
    }

    fn corrupt_sectors(
        &self,
        shard: usize,
        device: usize,
        stripe: usize,
        row: usize,
        len: usize,
    ) -> Result<(), DeviceError> {
        self.core.drain()?;
        let result = self
            .core
            .inner
            .corrupt_sectors(shard, device, stripe, row, len);
        self.core.bump_gen();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BLOCK: usize = 16;

    /// An in-memory device that counts the reads and writes reaching
    /// it, so tests can assert what the tiers absorbed.
    struct MemDevice {
        data: Mutex<Vec<u8>>,
        reads: AtomicU64,
        writes: AtomicU64,
    }

    impl MemDevice {
        fn new(len: usize) -> Self {
            MemDevice {
                data: Mutex::new(vec![0; len]),
                reads: AtomicU64::new(0),
                writes: AtomicU64::new(0),
            }
        }

        fn reads(&self) -> u64 {
            self.reads.load(Ordering::SeqCst)
        }

        fn writes(&self) -> u64 {
            self.writes.load(Ordering::SeqCst)
        }
    }

    impl BlockDevice for MemDevice {
        fn capacity(&self) -> u64 {
            lock(&self.data).len() as u64
        }

        fn block_size(&self) -> usize {
            BLOCK
        }

        fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, DeviceError> {
            self.reads.fetch_add(1, Ordering::SeqCst);
            let data = lock(&self.data);
            let start = offset as usize;
            match start.checked_add(len).filter(|&e| e <= data.len()) {
                Some(end) => Ok(data[start..end].to_vec()),
                None => Err(DeviceError::OutOfRange("read past end".into())),
            }
        }

        fn write_at(&self, offset: u64, bytes: &[u8]) -> Result<WriteOutcome, DeviceError> {
            self.writes.fetch_add(1, Ordering::SeqCst);
            let mut data = lock(&self.data);
            let start = offset as usize;
            let end = start
                .checked_add(bytes.len())
                .filter(|&e| e <= data.len())
                .ok_or_else(|| DeviceError::OutOfRange("write past end".into()))?;
            data[start..end].copy_from_slice(bytes);
            Ok(WriteOutcome {
                bytes: bytes.len() as u64,
                blocks_written: 1,
                stripes_touched: 1,
                ..WriteOutcome::default()
            })
        }

        fn flush(&self) -> Result<(), DeviceError> {
            Ok(())
        }

        fn status(&self) -> Result<DeviceStatus, DeviceError> {
            Ok(DeviceStatus {
                backend: "mem".into(),
                capacity: self.capacity(),
                block_size: BLOCK,
                shards: Vec::new(),
                cache: None,
            })
        }

        fn scrub(&self, _threads: usize) -> Result<ScrubOutcome, DeviceError> {
            Ok(ScrubOutcome::default())
        }

        fn repair(&self, _threads: usize) -> Result<RepairOutcome, DeviceError> {
            Ok(RepairOutcome::default())
        }
    }

    fn small_config() -> CacheConfig {
        CacheConfig {
            budget_bytes: (4 * BLOCK) as u64,
            write_back: false,
            interval_ms: 0,
        }
    }

    fn wb_config() -> CacheConfig {
        CacheConfig {
            budget_bytes: (4 * BLOCK) as u64,
            write_back: true,
            interval_ms: 0,
        }
    }

    #[test]
    fn repeat_reads_hit_without_touching_inner() {
        let dev = CachedDevice::new(MemDevice::new(8 * BLOCK), small_config());
        dev.write_at(0, &[7u8; BLOCK]).unwrap();
        assert_eq!(dev.read_at(0, BLOCK).unwrap(), vec![7u8; BLOCK]);
        let after_fill = dev.inner().reads();
        for _ in 0..5 {
            assert_eq!(dev.read_at(0, BLOCK).unwrap(), vec![7u8; BLOCK]);
        }
        assert_eq!(dev.inner().reads(), after_fill, "hits must not reach inner");
        let snap = dev.metrics().unwrap();
        assert_eq!(snap.counter(metric_names::CACHE_HIT), Some(5));
        assert_eq!(snap.counter(metric_names::CACHE_MISS), Some(1));
        assert_eq!(snap.counter(metric_names::CACHE_FILL), Some(1));
    }

    #[test]
    fn unaligned_reads_assemble_from_block_frames() {
        let inner = MemDevice::new(8 * BLOCK);
        let mut payload = vec![0u8; 8 * BLOCK];
        for (i, byte) in payload.iter_mut().enumerate() {
            *byte = (i % 251) as u8;
        }
        inner.write_at(0, &payload).unwrap();
        let dev = CachedDevice::new(inner, small_config());
        // Straddles three blocks at odd offsets.
        assert_eq!(
            dev.read_at(7, 2 * BLOCK + 3).unwrap(),
            payload[7..7 + 2 * BLOCK + 3]
        );
        // Second pass is all hits.
        let after = dev.inner().reads();
        assert_eq!(
            dev.read_at(7, 2 * BLOCK + 3).unwrap(),
            payload[7..7 + 2 * BLOCK + 3]
        );
        assert_eq!(dev.inner().reads(), after);
    }

    #[test]
    fn miss_runs_coalesce_into_one_inner_read() {
        let dev = CachedDevice::new(MemDevice::new(8 * BLOCK), small_config());
        let before = dev.inner().reads();
        dev.read_at(0, 4 * BLOCK).unwrap();
        assert_eq!(
            dev.inner().reads(),
            before + 1,
            "contiguous misses fill in one read"
        );
    }

    #[test]
    fn writes_invalidate_cached_blocks() {
        let dev = CachedDevice::new(MemDevice::new(8 * BLOCK), small_config());
        dev.read_at(0, BLOCK).unwrap();
        dev.write_at(4, &[9u8; 4]).unwrap();
        let mut expected = vec![0u8; BLOCK];
        expected[4..8].copy_from_slice(&[9u8; 4]);
        let before = dev.inner().reads();
        assert_eq!(dev.read_at(0, BLOCK).unwrap(), expected);
        assert_eq!(dev.inner().reads(), before + 1, "written block must refill");
        let snap = dev.metrics().unwrap();
        assert_eq!(snap.counter(metric_names::CACHE_INVALIDATE), Some(1));
    }

    #[test]
    fn eviction_respects_the_byte_budget() {
        // Budget of 4 frames, touch 6 blocks: something must go.
        let dev = CachedDevice::new(MemDevice::new(8 * BLOCK), small_config());
        for b in 0..6u64 {
            dev.read_at(b * BLOCK as u64, BLOCK).unwrap();
        }
        let status = dev.status().unwrap();
        let tier = status.cache.unwrap();
        assert_eq!(tier.frames, 4);
        assert!(tier.resident_blocks <= 4);
        assert!(dev.metrics().unwrap().counter(metric_names::CACHE_EVICT) >= Some(2));
        assert_eq!(status.backend, "cache");
    }

    #[test]
    fn scrub_and_repair_bump_the_generation() {
        let dev = CachedDevice::new(MemDevice::new(8 * BLOCK), small_config());
        dev.read_at(0, BLOCK).unwrap();
        assert_eq!(dev.status().unwrap().cache.unwrap().generation, 0);
        dev.scrub(1).unwrap();
        assert_eq!(dev.status().unwrap().cache.unwrap().generation, 1);
        let before = dev.inner().reads();
        dev.read_at(0, BLOCK).unwrap();
        assert_eq!(
            dev.inner().reads(),
            before + 1,
            "post-scrub read must refill"
        );
        dev.repair(1).unwrap();
        assert_eq!(dev.status().unwrap().cache.unwrap().generation, 2);
    }

    #[test]
    fn corrupted_frames_demote_to_misses() {
        let dev = CachedDevice::new(MemDevice::new(8 * BLOCK), small_config());
        dev.read_at(0, BLOCK).unwrap();
        {
            let mut clock = lock(&dev.core.clock);
            clock.frames[0].data[3] ^= 0xFF; // bit-rot in RAM
        }
        let before = dev.inner().reads();
        assert_eq!(dev.read_at(0, BLOCK).unwrap(), vec![0u8; BLOCK]);
        assert_eq!(dev.inner().reads(), before + 1, "bad checksum must refill");
    }

    #[test]
    fn write_back_absorbs_acks_and_serves_reads() {
        let dev = CachedDevice::new(MemDevice::new(8 * BLOCK), wb_config());
        let outcome = dev.write_at(0, &[5u8; BLOCK]).unwrap();
        assert_eq!(outcome.bytes, BLOCK as u64);
        assert_eq!(dev.inner().writes(), 0, "absorbed, not written through");
        // Read-your-write from the staged tier.
        assert_eq!(dev.read_at(0, BLOCK).unwrap(), vec![5u8; BLOCK]);
        assert_eq!(dev.status().unwrap().cache.unwrap().wb_buffered_blocks, 1);
        dev.flush().unwrap();
        assert!(dev.inner().writes() > 0);
        assert_eq!(dev.inner().read_at(0, BLOCK).unwrap(), vec![5u8; BLOCK]);
        assert_eq!(dev.status().unwrap().cache.unwrap().wb_buffered_blocks, 0);
        let snap = dev.metrics().unwrap();
        assert_eq!(snap.counter(metric_names::WB_ABSORBED), Some(1));
        assert_eq!(snap.counter(metric_names::WB_FLUSHED), Some(1));
    }

    #[test]
    fn write_back_coalesces_contiguous_blocks_into_one_op() {
        let dev = CachedDevice::new(MemDevice::new(8 * BLOCK), wb_config());
        for b in 0..4u64 {
            dev.write_at(b * BLOCK as u64, &[b as u8; BLOCK]).unwrap();
        }
        dev.flush().unwrap();
        let snap = dev.metrics().unwrap();
        assert_eq!(snap.counter(metric_names::WB_FLUSHED), Some(4));
        assert_eq!(
            snap.counter(metric_names::WB_COALESCED),
            Some(1),
            "4 contiguous blocks drain as one coalesced write"
        );
        for b in 0..4u64 {
            assert_eq!(
                dev.inner().read_at(b * BLOCK as u64, BLOCK).unwrap(),
                vec![b as u8; BLOCK]
            );
        }
    }

    #[test]
    fn write_back_rmw_preserves_partial_block_neighbours() {
        let inner = MemDevice::new(8 * BLOCK);
        inner.write_at(0, &[0xAA; BLOCK]).unwrap();
        let dev = CachedDevice::new(inner, wb_config());
        dev.write_at(4, &[0x55; 4]).unwrap();
        let mut expected = vec![0xAA; BLOCK];
        expected[4..8].copy_from_slice(&[0x55; 4]);
        assert_eq!(dev.read_at(0, BLOCK).unwrap(), expected);
        dev.flush().unwrap();
        assert_eq!(dev.inner().read_at(0, BLOCK).unwrap(), expected);
    }

    #[test]
    fn write_back_drains_on_pressure() {
        let dev = CachedDevice::new(MemDevice::new(32 * BLOCK), wb_config());
        // pressure = max(frames/2, 8) = 8 staged blocks.
        for b in 0..8u64 {
            dev.write_at(2 * b * BLOCK as u64, &[1u8; BLOCK]).unwrap();
        }
        assert!(dev.inner().writes() > 0, "pressure must force a drain");
        assert_eq!(dev.status().unwrap().cache.unwrap().wb_buffered_blocks, 0);
    }

    #[test]
    fn write_back_timer_drains_in_the_background() {
        let dev = CachedDevice::new(
            MemDevice::new(8 * BLOCK),
            CacheConfig {
                budget_bytes: (4 * BLOCK) as u64,
                write_back: true,
                interval_ms: 5,
            },
        );
        dev.write_at(0, &[3u8; BLOCK]).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while dev.inner().writes() == 0 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert!(dev.inner().writes() > 0, "timer drain never fired");
        assert_eq!(dev.inner().read_at(0, BLOCK).unwrap(), vec![3u8; BLOCK]);
    }

    #[test]
    fn conflicting_batches_forward_in_submission_order() {
        let dev = CachedDevice::new(MemDevice::new(8 * BLOCK), small_config());
        let mut batch = IoBatch::new();
        batch
            .write(0, vec![1u8; BLOCK])
            .read(0, BLOCK)
            .write(0, vec![2u8; BLOCK]);
        assert!(batch.has_conflicts());
        let result = dev.submit(&batch).unwrap();
        assert_eq!(result.results[1], OpResult::Read(vec![1u8; BLOCK]));
        assert_eq!(dev.read_at(0, BLOCK).unwrap(), vec![2u8; BLOCK]);
    }

    #[test]
    fn disjoint_batches_serve_read_hits_and_group_writes() {
        let dev = CachedDevice::new(MemDevice::new(8 * BLOCK), small_config());
        dev.read_at(0, BLOCK).unwrap(); // prime block 0
        let inner_reads = dev.inner().reads();
        let mut batch = IoBatch::new();
        batch.read(0, BLOCK).write(BLOCK as u64, vec![4u8; BLOCK]);
        let result = dev.submit(&batch).unwrap();
        assert_eq!(result.results[0], OpResult::Read(vec![0u8; BLOCK]));
        assert_eq!(result.write.bytes, BLOCK as u64);
        assert_eq!(
            dev.inner().reads(),
            inner_reads,
            "batch read hit stays local"
        );
        assert_eq!(
            dev.inner().read_at(BLOCK as u64, BLOCK).unwrap(),
            vec![4u8; BLOCK]
        );
    }

    #[test]
    fn out_of_range_ops_keep_inner_error_shapes() {
        let dev = CachedDevice::new(MemDevice::new(4 * BLOCK), small_config());
        assert!(matches!(
            dev.read_at(3 * BLOCK as u64, 2 * BLOCK),
            Err(DeviceError::OutOfRange(_))
        ));
        let wb = CachedDevice::new(MemDevice::new(4 * BLOCK), wb_config());
        assert!(matches!(
            wb.write_at(3 * BLOCK as u64, &[0u8; 2 * BLOCK]),
            Err(DeviceError::OutOfRange(_))
        ));
    }

    #[test]
    fn drop_performs_a_final_drain() {
        let dev = CachedDevice::new(
            MemDevice::new(8 * BLOCK),
            CacheConfig {
                budget_bytes: (4 * BLOCK) as u64,
                write_back: true,
                interval_ms: 50,
            },
        );
        dev.write_at(0, &[6u8; BLOCK]).unwrap();
        let core = Arc::clone(&dev.core);
        drop(dev);
        assert_eq!(core.inner.read_at(0, BLOCK).unwrap(), vec![6u8; BLOCK]);
    }
}
