//! Satellite: N threads hammering one registry lose no increments, and
//! snapshots taken mid-flight are torn-free — every number a snapshot
//! shows is a value the metric actually passed through (counters and
//! histogram counts only move up, histogram counts are always backed by
//! bucket contents).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use stair_obs::MetricsRegistry;

const THREADS: u64 = 8;
const PER_THREAD: u64 = 25_000;

#[test]
fn concurrent_hammering_loses_no_increments() {
    let reg = Arc::new(MetricsRegistry::new());
    let stop = Arc::new(AtomicBool::new(false));

    // A snapshotter races the writers, asserting torn-free reads: the
    // histogram's count is derived from its buckets, so it can never
    // exceed what was recorded, and successive snapshots never go
    // backwards.
    let snapshotter = {
        let reg = Arc::clone(&reg);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last_count = 0u64;
            let mut last_hist = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = reg.snapshot();
                let count = snap.counter("ops").unwrap_or(0);
                assert!(count >= last_count, "counter went backwards");
                assert!(count <= THREADS * PER_THREAD, "counter overshot");
                last_count = count;
                if let Some(h) = snap.histogram("lat") {
                    let hist_count = h.count();
                    assert!(hist_count >= last_hist, "histogram count went backwards");
                    assert!(hist_count <= THREADS * PER_THREAD, "histogram overshot");
                    assert!(
                        h.sum >= h.max,
                        "sum {} cannot be below max {} once anything was recorded",
                        h.sum,
                        h.max
                    );
                    last_hist = hist_count;
                }
            }
        })
    };

    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                let ops = reg.counter("ops");
                let bytes = reg.counter("bytes");
                let depth = reg.gauge("depth");
                let lat = reg.histogram("lat");
                for i in 0..PER_THREAD {
                    ops.inc();
                    bytes.add(3);
                    depth.add(if i % 2 == 0 { 1 } else { -1 });
                    lat.record(t * 1000 + i % 100);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer panicked");
    }
    stop.store(true, Ordering::Relaxed);
    snapshotter.join().expect("snapshotter panicked");

    let snap = reg.snapshot();
    assert_eq!(snap.counter("ops"), Some(THREADS * PER_THREAD));
    assert_eq!(snap.counter("bytes"), Some(THREADS * PER_THREAD * 3));
    // PER_THREAD is even, so each thread's gauge deltas cancel exactly.
    assert_eq!(snap.gauge("depth"), Some(0));
    let h = snap.histogram("lat").expect("histogram registered");
    assert_eq!(h.count(), THREADS * PER_THREAD);
    assert_eq!(h.buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
}
