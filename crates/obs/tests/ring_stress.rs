//! Ring-wrap and slow-retention stress for the two bounded recorders:
//! the [`Journal`] event rings and the [`FlightRecorder`] trace rings.
//! Both are written from request paths on many threads at once, so the
//! properties under test are concurrent ones — events are never torn
//! (every retained record is internally consistent with what exactly
//! one writer produced), the main ring wraps at its cap, and slow
//! entries survive a main-ring wrap in their own ring.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use stair_obs::{FlightRecorder, Journal, SpanRecord};

const WRITERS: usize = 8;
const JOURNAL_RING_CAP: usize = 1024;
const JOURNAL_SLOW_CAP: usize = 64;
const TRACE_RING_CAP: usize = 128;
const SLOW_TRACE_CAP: usize = 32;

/// Encodes (writer, seq) into an event so a retained record can be
/// checked against exactly what its writer constructed.
fn fingerprint(writer: u64, seq: u64) -> u64 {
    writer * 1_000_000 + seq
}

#[test]
fn journal_ring_wraps_without_tearing_under_concurrent_writers() {
    let journal = Journal::new();
    // Every event is fast; each writer floods well past the ring cap.
    let per_writer = (2 * JOURNAL_RING_CAP) as u64;
    std::thread::scope(|scope| {
        for w in 0..WRITERS as u64 {
            let journal = &journal;
            scope.spawn(move || {
                for seq in 0..per_writer {
                    // kind and bytes both derive from (writer, seq): a
                    // torn event would disagree with itself.
                    let kind = if seq.is_multiple_of(2) {
                        "read"
                    } else {
                        "write"
                    };
                    journal.record(
                        kind,
                        w as u32,
                        fingerprint(w, seq),
                        Duration::from_micros(seq % 2),
                        true,
                    );
                }
            });
        }
    });

    let recent = journal.recent();
    assert_eq!(recent.len(), JOURNAL_RING_CAP, "main ring wraps at cap");
    for event in &recent {
        let w = event.shard as u64;
        assert!(w < WRITERS as u64, "shard field is a writer id");
        let seq = event.bytes - fingerprint(w, 0);
        assert!(seq < per_writer, "bytes fingerprint matches its writer");
        let expected_kind = if seq.is_multiple_of(2) {
            "read"
        } else {
            "write"
        };
        assert_eq!(
            event.kind, expected_kind,
            "kind agrees with the bytes fingerprint — the event is not torn"
        );
        assert_eq!(event.duration_us, seq % 2);
        assert!(event.ok);
    }
    // Timestamps are monotone non-decreasing in retention order: ring
    // order is real arrival order, not interleaved garbage.
    for pair in recent.windows(2) {
        assert!(pair[0].t_us <= pair[1].t_us);
    }
}

#[test]
fn journal_slow_ops_survive_main_ring_wrap() {
    let journal = Journal::new();
    journal.set_slow_threshold_us(1_000);

    // Phase 1: a handful of slow ops, concurrently.
    std::thread::scope(|scope| {
        for w in 0..4u64 {
            let journal = &journal;
            scope.spawn(move || {
                for seq in 0..4u64 {
                    journal.record(
                        "slow",
                        w as u32,
                        fingerprint(w, seq),
                        Duration::from_millis(2),
                        true,
                    );
                }
            });
        }
    });

    // Phase 2: flood the main ring with fast ops until it wraps many
    // times over.
    std::thread::scope(|scope| {
        for w in 0..WRITERS as u64 {
            let journal = &journal;
            scope.spawn(move || {
                for seq in 0..(2 * JOURNAL_RING_CAP) as u64 {
                    journal.record("fast", w as u32, seq, Duration::from_micros(1), true);
                }
            });
        }
    });

    // The main ring has forgotten the slow phase entirely …
    assert!(journal.recent().iter().all(|e| e.kind == "fast"));
    // … but the slow ring retained every slow op, intact.
    let slow = journal.slow_ops();
    assert_eq!(slow.len(), 16, "all slow ops retained");
    assert!(slow.len() <= JOURNAL_SLOW_CAP);
    for event in &slow {
        assert_eq!(event.kind, "slow");
        let w = event.shard as u64;
        assert!(w < 4 && event.bytes - fingerprint(w, 0) < 4, "not torn");
    }
}

// ---- flight recorder ----------------------------------------------

/// One writer's traces: `roots` roots under distinct trace ids, each
/// with `children` child spans, every field derived from
/// (writer, seq) so retained trees can be checked for tearing.
fn record_traces(rec: &FlightRecorder, ids: &AtomicU64, writer: u64, roots: u64, slow: bool) {
    const CHILDREN: u64 = 3;
    for seq in 0..roots {
        let trace_id = ids.fetch_add(1, Ordering::Relaxed) + 1;
        let root_span = trace_id << 8;
        for c in 0..CHILDREN {
            rec.record_span(SpanRecord {
                trace_id,
                span_id: root_span + 1 + c,
                parent_id: root_span,
                name: "store.stripe",
                start_us: c,
                duration_us: 1,
                ok: true,
                bytes: fingerprint(writer, seq),
            });
        }
        rec.finish_root(SpanRecord {
            trace_id,
            span_id: root_span,
            parent_id: 0,
            name: "client.submit",
            start_us: 0,
            duration_us: if slow { 1_000_000 } else { 10 },
            ok: true,
            bytes: fingerprint(writer, seq),
        });
    }
}

#[test]
fn flight_recorder_ring_wraps_without_tearing_under_concurrent_writers() {
    let rec = FlightRecorder::new();
    rec.set_slow_threshold_us(u64::MAX); // only errors would be slow
    let ids = AtomicU64::new(0);
    let per_writer = (TRACE_RING_CAP) as u64;
    std::thread::scope(|scope| {
        for w in 0..WRITERS as u64 {
            let (rec, ids) = (&rec, &ids);
            scope.spawn(move || record_traces(rec, ids, w, per_writer, false));
        }
    });

    let traces = rec.traces();
    assert_eq!(traces.len(), TRACE_RING_CAP, "trace ring wraps at cap");
    for trace in &traces {
        // Structure: every span shares the trace id, the root is last,
        // children point at the root — an interleaved (torn) trace
        // would mix spans of different trace ids or writers.
        assert!(trace.spans.iter().all(|s| s.trace_id == trace.trace_id));
        let root = trace.spans.last().expect("root span");
        assert_eq!(root.span_id, trace.root_span);
        assert_eq!(root.parent_id, 0);
        assert_eq!(root.name, "client.submit");
        let children = &trace.spans[..trace.spans.len() - 1];
        assert_eq!(children.len(), 3, "all three children retained");
        for child in children {
            assert_eq!(child.parent_id, root.span_id);
            assert_eq!(child.name, "store.stripe");
            assert_eq!(child.bytes, root.bytes, "same writer produced the tree");
        }
        assert!(!trace.slow);
    }
    assert_eq!(rec.dropped_spans(), 0, "no caps were hit");
}

#[test]
fn slow_traces_survive_main_ring_wrap() {
    let rec = FlightRecorder::new();
    rec.set_slow_threshold_us(500_000);
    let ids = AtomicU64::new(0);

    // Phase 1: a few slow traces from concurrent writers.
    std::thread::scope(|scope| {
        for w in 0..4u64 {
            let (rec, ids) = (&rec, &ids);
            scope.spawn(move || record_traces(rec, ids, w, 4, true));
        }
    });

    // Phase 2: wrap the main ring with fast traces.
    std::thread::scope(|scope| {
        for w in 0..WRITERS as u64 {
            let (rec, ids) = (&rec, &ids);
            scope.spawn(move || record_traces(rec, ids, w, 2 * TRACE_RING_CAP as u64, false));
        }
    });

    // The main ring only remembers fast traces …
    assert!(rec.traces().iter().all(|t| !t.slow));
    // … while the slow ring kept the slow phase, trees intact.
    let slow = rec.slow_traces();
    assert_eq!(slow.len(), 16, "all slow traces retained");
    assert!(slow.len() <= SLOW_TRACE_CAP);
    for trace in &slow {
        assert!(trace.slow);
        assert_eq!(trace.duration_us, 1_000_000);
        let root = trace.spans.last().expect("root span");
        assert_eq!(root.span_id, trace.root_span);
        assert!(trace
            .spans
            .iter()
            .all(|s| s.trace_id == trace.trace_id && s.bytes == root.bytes));
    }
}

#[test]
fn span_buffer_caps_count_drops_instead_of_growing() {
    let rec = FlightRecorder::new();
    // 600 spans into one pending trace: the per-trace cap (512) bounds
    // the buffer and counts the overflow.
    for i in 0..600u64 {
        rec.record_span(SpanRecord {
            trace_id: 7,
            span_id: 1000 + i,
            parent_id: 1,
            name: "store.stripe",
            start_us: i,
            duration_us: 1,
            ok: true,
            bytes: 0,
        });
    }
    assert_eq!(rec.dropped_spans(), 600 - 512);
    rec.finish_root(SpanRecord {
        trace_id: 7,
        span_id: 1,
        parent_id: 0,
        name: "client.submit",
        start_us: 0,
        duration_us: 1,
        ok: true,
        bytes: 0,
    });
    let traces = rec.traces();
    assert_eq!(traces.len(), 1);
    assert_eq!(traces[0].spans.len(), 512 + 1, "capped spans plus root");
}
