//! Satellite: property tests pinning the histogram's quantile estimates
//! to the exact nearest-rank percentile within one log₂ bucket's
//! relative error — `exact ≤ estimate < 2·exact` (and both zero
//! together).

use proptest::prelude::*;
use stair_obs::Histogram;

/// Exact nearest-rank percentile over raw samples — the definition the
/// bench driver used before the shared histogram replaced it.
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn check(samples: &[u64], q: f64) {
    let h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    let snap = h.snapshot();
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let exact = nearest_rank(&sorted, q);
    let est = snap.quantile(q);
    if exact == 0 {
        assert_eq!(est, 0);
    } else {
        assert!(
            exact <= est && est < 2 * exact,
            "q={q} exact={exact} estimate={est} outside one-bucket bound"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// p50 and p99 stay within one bucket of exact nearest-rank for
    /// arbitrary latency-like samples.
    #[test]
    fn p50_and_p99_agree_with_nearest_rank(
        samples in proptest::collection::vec(0u64..2_000_000, 1..300)
    ) {
        check(&samples, 0.50);
        check(&samples, 0.99);
    }

    /// The bound holds across the whole quantile range, not just the
    /// two the reports surface.
    #[test]
    fn arbitrary_quantiles_stay_in_bound(
        samples in proptest::collection::vec(0u64..1_000_000, 1..200),
        hundredths in 1u32..=100
    ) {
        check(&samples, f64::from(hundredths) / 100.0);
    }

    /// The estimate never exceeds the recorded maximum and count is
    /// always backed by the buckets.
    #[test]
    fn estimates_are_clamped_to_max(
        samples in proptest::collection::vec(0u64..u64::MAX / 2, 1..100)
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(snap.max, *samples.iter().max().unwrap());
        prop_assert!(snap.p99() <= snap.max);
        prop_assert!(snap.p50() <= snap.p99());
    }
}
