//! A bounded structured event journal with slow-op capture.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default slow-op threshold: 10 ms. On a local or loopback data path
/// anything slower is an outlier worth keeping.
pub const DEFAULT_SLOW_THRESHOLD_US: u64 = 10_000;

/// Events the main ring retains before wrapping.
const RING_CAP: usize = 1024;
/// Slow ops retained with full context.
const SLOW_CAP: usize = 64;

/// One structured trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since the journal was created (monotonic clock).
    pub t_us: u64,
    /// Operation kind (`"read"`, `"write"`, `"batch"`, …).
    pub kind: String,
    /// Device / shard index the op targeted (0 for single-store paths).
    pub shard: u32,
    /// Bytes moved by the op.
    pub bytes: u64,
    /// Wall-clock duration of the op in microseconds.
    pub duration_us: u64,
    /// Whether the op succeeded.
    pub ok: bool,
}

/// A ring buffer of [`TraceEvent`]s plus a second ring retaining ops
/// that exceeded the slow threshold. Both rings drop their oldest entry
/// when full; recording is a short mutex hold (no allocation beyond the
/// event itself), cheap enough for per-request paths.
pub struct Journal {
    start: Instant,
    threshold_us: AtomicU64,
    ring: Mutex<VecDeque<TraceEvent>>,
    slow: Mutex<VecDeque<TraceEvent>>,
}

impl Default for Journal {
    fn default() -> Self {
        Self::new()
    }
}

impl Journal {
    /// An empty journal with the default slow threshold.
    pub fn new() -> Self {
        Journal {
            start: Instant::now(),
            threshold_us: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_US),
            ring: Mutex::new(VecDeque::with_capacity(RING_CAP)),
            slow: Mutex::new(VecDeque::with_capacity(SLOW_CAP)),
        }
    }

    /// Sets the slow-op threshold (microseconds). 0 captures everything,
    /// `u64::MAX` disables capture.
    pub fn set_slow_threshold_us(&self, us: u64) {
        self.threshold_us.store(us, Ordering::Relaxed);
    }

    /// The current slow-op threshold in microseconds.
    pub fn slow_threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Records one completed op.
    pub fn record(&self, kind: &str, shard: u32, bytes: u64, duration: Duration, ok: bool) {
        let event = TraceEvent {
            t_us: self.start.elapsed().as_micros() as u64,
            kind: kind.to_string(),
            shard,
            bytes,
            duration_us: duration.as_micros() as u64,
            ok,
        };
        if event.duration_us >= self.slow_threshold_us() {
            let mut slow = self.slow.lock().unwrap_or_else(|e| e.into_inner());
            if slow.len() == SLOW_CAP {
                slow.pop_front();
            }
            slow.push_back(event.clone());
        }
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == RING_CAP {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// The retained slow ops, oldest first.
    pub fn slow_ops(&self) -> Vec<TraceEvent> {
        self.slow
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_keeps_the_newest() {
        let j = Journal::new();
        for i in 0..(RING_CAP + 10) as u64 {
            j.record("read", 0, i, Duration::from_micros(1), true);
        }
        let recent = j.recent();
        assert_eq!(recent.len(), RING_CAP);
        assert_eq!(recent.last().unwrap().bytes, (RING_CAP + 10) as u64 - 1);
        assert_eq!(recent[0].bytes, 10);
    }

    #[test]
    fn slow_ops_respect_the_threshold() {
        let j = Journal::new();
        j.set_slow_threshold_us(1000);
        j.record("read", 0, 64, Duration::from_micros(10), true);
        j.record("write", 2, 128, Duration::from_micros(5000), false);
        assert_eq!(j.recent().len(), 2);
        let slow = j.slow_ops();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].kind, "write");
        assert_eq!(slow[0].shard, 2);
        assert_eq!(slow[0].bytes, 128);
        assert!(!slow[0].ok);
        assert!(slow[0].duration_us >= 1000);
    }

    #[test]
    fn threshold_zero_captures_everything() {
        let j = Journal::new();
        j.set_slow_threshold_us(0);
        j.record("flush", 0, 0, Duration::ZERO, true);
        assert_eq!(j.slow_ops().len(), 1);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let j = Journal::new();
        j.record("a", 0, 0, Duration::ZERO, true);
        j.record("b", 0, 0, Duration::ZERO, true);
        let r = j.recent();
        assert!(r[0].t_us <= r[1].t_us);
    }
}
