//! Request-scoped tracing: span trees and a per-process flight
//! recorder.
//!
//! A **trace** is one client-visible operation (a `submit`, a
//! `read_at`, …) identified by a random `trace_id`. Inside it, each
//! layer that does interesting work opens a **span** — a named,
//! timed interval with a parent pointer — so a slow request can be
//! attributed to client serialization vs. queue wait vs. stripe lock
//! vs. codec pass. Span context crosses threads via [`enter_ctx`] and
//! crosses the wire inside protocol v3 frames (the net crate owns the
//! encoding; this crate only hands out `(trace_id, span_id)` pairs).
//!
//! Completed traces land in the process-global [`FlightRecorder`]: a
//! bounded ring of recent traces plus a second ring that retains slow
//! or errored traces after the main ring has wrapped — the same
//! slow-op idiom as [`Journal`](crate::Journal), one level up.
//!
//! Tracing is **off by default**; [`set_enabled`] turns root-span
//! minting on for the process. A disabled process still records spans
//! for requests that arrive with wire context ([`wire_root_at`]), so a
//! server traces exactly the requests its clients asked it to trace.
//! The hot-path cost when disabled is one relaxed atomic load per
//! would-be root and one thread-local peek per would-be child.
//!
//! Every span name must be one of the constants in [`names`] — the
//! `span-discipline` lint in `stair-check` enforces that no name
//! literal appears at a recording site outside this crate.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime};

/// The span names the stack records, declared once.
///
/// Each constant is the single source of truth for one span name;
/// recording sites reference these (never string literals — enforced
/// by the `span-discipline` lint), so a typo cannot silently split a
/// span family in two.
pub mod names {
    /// Client batch submission (root on the client side).
    pub const CLIENT_SUBMIT: &str = "client.submit";
    /// Client `read_at` (root on the client side).
    pub const CLIENT_READ: &str = "client.read";
    /// Client `write_at` (root on the client side).
    pub const CLIENT_WRITE: &str = "client.write";
    /// Packing requests into wire frames.
    pub const CLIENT_ENCODE: &str = "client.encode";
    /// Parsing and verifying wire responses.
    pub const CLIENT_DECODE: &str = "client.decode";
    /// One server-side request (root on the server side; its parent is
    /// the client span that sent the frame).
    pub const SRV_REQUEST: &str = "srv.request";
    /// Time a request sat in the worker queue before a worker took it.
    pub const SRV_QUEUE: &str = "srv.queue";
    /// Executing the request body against the shard set.
    pub const SRV_EXEC: &str = "srv.exec";
    /// One shard's slice of a split batch.
    pub const SHARDS_SUBMIT: &str = "shards.submit";
    /// One stripe's batched store pass.
    pub const STORE_STRIPE: &str = "store.stripe";
    /// Acquiring the stripe lock.
    pub const STORE_LOCK: &str = "store.lock";
    /// Full-stripe re-encode parity pass.
    pub const STORE_ENCODE: &str = "store.encode";
    /// Parity-delta update pass (small writes).
    pub const STORE_DELTA: &str = "store.delta";
    /// Persisting integrity metadata after a write-back.
    pub const STORE_PERSIST: &str = "store.persist";
    /// `Instrumented` device read.
    pub const DEV_READ: &str = "dev.read";
    /// `Instrumented` device write.
    pub const DEV_WRITE: &str = "dev.write";
    /// `Instrumented` device batch submit.
    pub const DEV_BATCH: &str = "dev.batch";
    /// `Instrumented` device flush.
    pub const DEV_FLUSH: &str = "dev.flush";
    /// `Instrumented` device scrub.
    pub const DEV_SCRUB: &str = "dev.scrub";
    /// `Instrumented` device repair.
    pub const DEV_REPAIR: &str = "dev.repair";
    /// One timed submission in the bench driver.
    pub const BENCH_SUBMIT: &str = "bench.submit";
    /// Appending (and fsyncing) one intent record to the stripe journal.
    pub const JRNL_APPEND: &str = "jrnl.append";
    /// Replaying journal records at store open.
    pub const JRNL_REPLAY: &str = "jrnl.replay";
    /// Filling read-cache frames from the inner device on a miss.
    pub const CACHE_FILL: &str = "cache.fill";
    /// Draining the write-back buffer as one coalesced batch.
    pub const WB_FLUSH: &str = "wb.flush";

    /// Every declared span name (the lint checks recording sites
    /// against this set, and the TRACE consumers can validate names).
    pub const ALL: &[&str] = &[
        CLIENT_SUBMIT,
        CLIENT_READ,
        CLIENT_WRITE,
        CLIENT_ENCODE,
        CLIENT_DECODE,
        SRV_REQUEST,
        SRV_QUEUE,
        SRV_EXEC,
        SHARDS_SUBMIT,
        STORE_STRIPE,
        STORE_LOCK,
        STORE_ENCODE,
        STORE_DELTA,
        STORE_PERSIST,
        DEV_READ,
        DEV_WRITE,
        DEV_BATCH,
        DEV_FLUSH,
        DEV_SCRUB,
        DEV_REPAIR,
        BENCH_SUBMIT,
        JRNL_APPEND,
        JRNL_REPLAY,
        CACHE_FILL,
        WB_FLUSH,
    ];
}

/// Completed traces the main ring retains before wrapping.
const TRACE_RING_CAP: usize = 128;
/// Slow or errored traces retained with full context.
const SLOW_TRACE_CAP: usize = 32;
/// In-flight traces buffered at once; spans for further trace ids are
/// dropped (counted) rather than growing without bound.
const MAX_PENDING_TRACES: usize = 256;
/// Spans buffered per in-flight trace.
const MAX_SPANS_PER_TRACE: usize = 512;

/// Default slow-trace threshold: 10 ms end-to-end, matching the
/// journal's slow-op default.
pub const DEFAULT_SLOW_TRACE_US: u64 = crate::DEFAULT_SLOW_THRESHOLD_US;

/// The wire-portable part of a span: which trace, which span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanCtx {
    /// Identifies the whole request tree across processes.
    pub trace_id: u64,
    /// Identifies one span; children carry it as their parent.
    pub span_id: u64,
}

/// One finished span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (nonzero).
    pub span_id: u64,
    /// Parent span id; 0 means "no local parent" (a process root —
    /// either a freshly minted trace or a wire-propagated parent that
    /// lives in another process' recorder).
    pub parent_id: u64,
    /// Declared span name (one of [`names::ALL`]).
    pub name: &'static str,
    /// Start time in microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
    /// Whether the spanned work succeeded.
    pub ok: bool,
    /// Bytes moved by the spanned work (0 when not meaningful).
    pub bytes: u64,
}

/// One completed trace: the process-root span plus every span recorded
/// under its trace id in this process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// The trace id shared by all spans (and by the peer process' half
    /// of the tree, if the request crossed the wire).
    pub trace_id: u64,
    /// Span id of the process root.
    pub root_span: u64,
    /// End-to-end duration of the process root in microseconds.
    pub duration_us: u64,
    /// Whether the root (and thus the operation) succeeded.
    pub ok: bool,
    /// `true` when this trace was retained in the slow/errored ring.
    pub slow: bool,
    /// Every span of this trace recorded in this process, in
    /// completion order; the root is last.
    pub spans: Vec<SpanRecord>,
}

/// The per-process trace sink: an epoch for timestamps, a buffer of
/// in-flight traces, and two bounded rings of completed ones — recent
/// traces, and slow/errored traces that survive the main ring's wrap
/// (the [`Journal`](crate::Journal) slow-op idiom, one level up).
pub struct FlightRecorder {
    epoch: Instant,
    threshold_us: AtomicU64,
    pending: Mutex<HashMap<u64, Vec<SpanRecord>>>,
    completed: Mutex<VecDeque<TraceRecord>>,
    slow: Mutex<VecDeque<TraceRecord>>,
    dropped: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// An empty recorder with the default slow-trace threshold.
    pub fn new() -> Self {
        FlightRecorder {
            epoch: Instant::now(),
            threshold_us: AtomicU64::new(DEFAULT_SLOW_TRACE_US),
            pending: Mutex::new(HashMap::new()),
            completed: Mutex::new(VecDeque::with_capacity(TRACE_RING_CAP)),
            slow: Mutex::new(VecDeque::with_capacity(SLOW_TRACE_CAP)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Microseconds elapsed since this recorder's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Microseconds between the epoch and `at` (0 if `at` precedes it).
    pub fn instant_us(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Sets the slow-trace threshold (microseconds). 0 retains every
    /// trace in the slow ring, `u64::MAX` retains only errored ones.
    pub fn set_slow_threshold_us(&self, us: u64) {
        self.threshold_us.store(us, Ordering::Relaxed);
    }

    /// The current slow-trace threshold in microseconds.
    pub fn slow_threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Buffers one finished non-root span until its trace completes.
    /// Spans beyond the per-trace or pending-trace caps are counted in
    /// [`dropped_spans`](Self::dropped_spans) and discarded.
    pub fn record_span(&self, rec: SpanRecord) {
        let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(spans) = pending.get_mut(&rec.trace_id) {
            if spans.len() >= MAX_SPANS_PER_TRACE {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            spans.push(rec);
        } else if pending.len() >= MAX_PENDING_TRACES {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            pending.insert(rec.trace_id, vec![rec]);
        }
    }

    /// Completes a trace: takes every buffered span for `root`'s trace
    /// id, appends the root, and files the result in the rings. Slow
    /// (`duration ≥ threshold`) or errored traces are also retained in
    /// the slow ring.
    pub fn finish_root(&self, root: SpanRecord) {
        let mut spans = self
            .pending
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&root.trace_id)
            .unwrap_or_default();
        let record = TraceRecord {
            trace_id: root.trace_id,
            root_span: root.span_id,
            duration_us: root.duration_us,
            ok: root.ok,
            slow: root.duration_us >= self.slow_threshold_us() || !root.ok,
            spans: {
                spans.push(root);
                spans
            },
        };
        if record.slow {
            let mut slow = self.slow.lock().unwrap_or_else(|e| e.into_inner());
            if slow.len() == SLOW_TRACE_CAP {
                slow.pop_front();
            }
            slow.push_back(record.clone());
        }
        let mut ring = self.completed.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == TRACE_RING_CAP {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// The retained completed traces, oldest first.
    pub fn traces(&self) -> Vec<TraceRecord> {
        self.completed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// The retained slow/errored traces, oldest first. These survive
    /// the main ring's wrap.
    pub fn slow_traces(&self) -> Vec<TraceRecord> {
        self.slow
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Spans discarded because a buffering cap was hit.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

// ---- process-global state -----------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
static ID_COUNTER: AtomicU64 = AtomicU64::new(0);
static ID_SEED: OnceLock<u64> = OnceLock::new();

thread_local! {
    static CURRENT: RefCell<Vec<SpanCtx>> = const { RefCell::new(Vec::new()) };
}

/// Turns root-span minting on or off for this process. Off (the
/// default) makes [`root_span`] and the root half of [`span_or_root`]
/// no-ops; wire-propagated roots are always recorded.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether this process mints root spans.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-global flight recorder (created on first use).
pub fn recorder() -> &'static FlightRecorder {
    RECORDER.get_or_init(FlightRecorder::new)
}

/// A fresh nonzero id, unique within the process and seeded with the
/// process id and wall clock so two processes sharing one loopback
/// session do not collide.
fn next_id() -> u64 {
    let seed = *ID_SEED.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        nanos ^ ((std::process::id() as u64) << 32)
    });
    // splitmix64 over seed + counter: well-distributed, dependency-free.
    let mut z = seed.wrapping_add(
        ID_COUNTER
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    z.max(1)
}

/// The innermost span context on this thread, if any — what a wire
/// frame should propagate, and what a spawned worker thread should
/// [`enter_ctx`].
pub fn current() -> Option<SpanCtx> {
    CURRENT.with(|c| c.try_borrow().ok().and_then(|s| s.last().copied()))
}

fn push_current(ctx: SpanCtx) {
    CURRENT.with(|c| {
        if let Ok(mut s) = c.try_borrow_mut() {
            s.push(ctx);
        }
    });
}

fn pop_current(span_id: u64) {
    CURRENT.with(|c| {
        if let Ok(mut s) = c.try_borrow_mut() {
            // Guards drop LIFO in practice; scan defensively anyway.
            if let Some(at) = s.iter().rposition(|x| x.span_id == span_id) {
                s.remove(at);
            }
        }
    });
}

// ---- guards --------------------------------------------------------

struct ActiveSpan {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    name: &'static str,
    start: Instant,
    start_us: u64,
    bytes: u64,
    ok: bool,
    root: bool,
}

/// A live span. Recorded (and popped from the thread's context stack)
/// when dropped; [`finish`](SpanGuard::finish) makes the end explicit.
/// A no-op guard (tracing disabled, no enclosing span) costs nothing.
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

impl SpanGuard {
    fn active(name: &'static str, trace_id: u64, parent_id: u64, start: Instant) -> SpanGuard {
        let span_id = next_id();
        let start_us = recorder().instant_us(start);
        push_current(SpanCtx { trace_id, span_id });
        SpanGuard {
            inner: Some(ActiveSpan {
                trace_id,
                span_id,
                parent_id,
                name,
                start,
                start_us,
                bytes: 0,
                ok: true,
                root: false,
            }),
        }
    }

    fn noop() -> SpanGuard {
        SpanGuard { inner: None }
    }

    /// Whether this guard records anything.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// This span's context (what to propagate), if recording.
    pub fn ctx(&self) -> Option<SpanCtx> {
        self.inner.as_ref().map(|a| SpanCtx {
            trace_id: a.trace_id,
            span_id: a.span_id,
        })
    }

    /// Attributes `bytes` moved to this span.
    pub fn set_bytes(&mut self, bytes: u64) {
        if let Some(a) = self.inner.as_mut() {
            a.bytes = bytes;
        }
    }

    /// Marks the spanned work as failed.
    pub fn fail(&mut self) {
        if let Some(a) = self.inner.as_mut() {
            a.ok = false;
        }
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.inner.take() else { return };
        pop_current(a.span_id);
        let rec = SpanRecord {
            trace_id: a.trace_id,
            span_id: a.span_id,
            parent_id: a.parent_id,
            name: a.name,
            start_us: a.start_us,
            duration_us: a.start.elapsed().as_micros() as u64,
            ok: a.ok,
            bytes: a.bytes,
        };
        if a.root {
            recorder().finish_root(rec);
        } else {
            recorder().record_span(rec);
        }
    }
}

/// Starts a new trace rooted at `name` — the entry point of one
/// client-visible operation. No-op unless [`enabled`].
pub fn root_span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::noop();
    }
    let mut g = SpanGuard::active(name, next_id(), 0, Instant::now());
    if let Some(a) = g.inner.as_mut() {
        a.root = true;
    }
    g
}

/// Opens a child of the innermost span on this thread; no-op when
/// there is none.
pub fn span(name: &'static str) -> SpanGuard {
    match current() {
        Some(ctx) => SpanGuard::active(name, ctx.trace_id, ctx.span_id, Instant::now()),
        None => SpanGuard::noop(),
    }
}

/// A child of the current span when one exists, else a new root when
/// tracing is [`enabled`], else a no-op — the right call at layer
/// entry points that can be either the top of an operation or a step
/// inside a larger one.
pub fn span_or_root(name: &'static str) -> SpanGuard {
    match current() {
        Some(ctx) => SpanGuard::active(name, ctx.trace_id, ctx.span_id, Instant::now()),
        None => root_span(name),
    }
}

/// Starts this process' root for a trace that arrived over the wire:
/// the span joins trace `trace_id` under the remote parent
/// `parent_span`, and its clock starts at `start` (e.g. when the
/// frame was read, so queue wait is inside the span). Always records —
/// the wire context *is* the opt-in.
pub fn wire_root_at(
    name: &'static str,
    trace_id: u64,
    parent_span: u64,
    start: Instant,
) -> SpanGuard {
    let mut g = SpanGuard::active(name, trace_id, parent_span, start);
    if let Some(a) = g.inner.as_mut() {
        a.root = true;
        // The remote parent is not in this recorder; keep the pointer
        // for tree stitching but mark the span as a process root.
        a.parent_id = parent_span;
    }
    g
}

/// Records an already-measured interval as a child of the current
/// span (no-op without one) — for waits measured with explicit
/// timestamps, like queue time between enqueue and dequeue.
pub fn span_at(name: &'static str, start: Instant, duration: Duration) {
    let Some(ctx) = current() else { return };
    recorder().record_span(SpanRecord {
        trace_id: ctx.trace_id,
        span_id: next_id(),
        parent_id: ctx.span_id,
        name,
        start_us: recorder().instant_us(start),
        duration_us: duration.as_micros() as u64,
        ok: true,
        bytes: 0,
    });
}

/// Re-enters `ctx` on this thread (for handing span context across a
/// thread spawn); the context pops when the guard drops. `None` is a
/// no-op, so call sites can pass [`current`] through unconditionally.
pub fn enter_ctx(ctx: Option<SpanCtx>) -> CtxGuard {
    if let Some(ctx) = ctx {
        push_current(ctx);
        CtxGuard { ctx: Some(ctx) }
    } else {
        CtxGuard { ctx: None }
    }
}

/// Guard returned by [`enter_ctx`]; pops the context on drop.
pub struct CtxGuard {
    ctx: Option<SpanCtx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.take() {
            pop_current(ctx.span_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests below share the process-global recorder with the rest of
    /// the test binary, so they always filter by their own trace ids.
    fn find_trace(id: u64) -> Option<TraceRecord> {
        recorder().traces().into_iter().find(|t| t.trace_id == id)
    }

    /// Serializes tests that toggle the process-global enabled flag.
    fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_process_mints_no_roots() {
        let _flag = flag_lock();
        set_enabled(false);
        let g = root_span(names::CLIENT_READ);
        assert!(!g.is_recording());
        assert!(current().is_none());
        assert!(!span(names::STORE_LOCK).is_recording());
    }

    #[test]
    fn span_tree_lands_in_the_recorder() {
        let _flag = flag_lock();
        set_enabled(true);
        let mut root = root_span(names::CLIENT_SUBMIT);
        root.set_bytes(4096);
        let root_ctx = root.ctx().expect("recording");
        {
            let child = span(names::STORE_STRIPE);
            let cctx = child.ctx().expect("child recording");
            assert_eq!(cctx.trace_id, root_ctx.trace_id);
            let grand = span(names::STORE_LOCK);
            assert_eq!(grand.ctx().expect("grand").trace_id, root_ctx.trace_id);
        }
        root.finish();
        set_enabled(false);

        let t = find_trace(root_ctx.trace_id).expect("trace completed");
        assert_eq!(t.root_span, root_ctx.span_id);
        assert!(t.ok);
        assert_eq!(t.spans.len(), 3);
        let root_rec = t.spans.last().expect("root last");
        assert_eq!(root_rec.name, names::CLIENT_SUBMIT);
        assert_eq!(root_rec.bytes, 4096);
        assert_eq!(root_rec.parent_id, 0);
        let stripe = t
            .spans
            .iter()
            .find(|s| s.name == names::STORE_STRIPE)
            .expect("stripe span");
        assert_eq!(stripe.parent_id, root_ctx.span_id);
        let lock = t
            .spans
            .iter()
            .find(|s| s.name == names::STORE_LOCK)
            .expect("lock span");
        assert_eq!(lock.parent_id, stripe.span_id);
    }

    #[test]
    fn wire_root_joins_the_remote_trace() {
        let _flag = flag_lock();
        // A "server" process: no local enablement, context from the wire.
        set_enabled(false);
        let t0 = Instant::now();
        let root = wire_root_at(names::SRV_REQUEST, 777_001, 42, t0);
        assert!(root.is_recording());
        span_at(names::SRV_QUEUE, t0, Duration::from_micros(5));
        drop(root);
        let t = find_trace(777_001).expect("wire trace completed");
        let root_rec = t.spans.last().expect("root");
        assert_eq!(root_rec.parent_id, 42);
        assert!(t.spans.iter().any(|s| s.name == names::SRV_QUEUE));
    }

    #[test]
    fn errored_traces_are_retained_in_the_slow_ring() {
        let _flag = flag_lock();
        set_enabled(true);
        let mut root = root_span(names::CLIENT_WRITE);
        let ctx = root.ctx().expect("recording");
        root.fail();
        drop(root);
        set_enabled(false);
        let slow = recorder().slow_traces();
        let t = slow
            .iter()
            .find(|t| t.trace_id == ctx.trace_id)
            .expect("errored trace retained");
        assert!(!t.ok);
        assert!(t.slow);
    }

    #[test]
    fn ctx_guard_scopes_context_across_threads() {
        let _flag = flag_lock();
        set_enabled(true);
        let root = root_span(names::CLIENT_SUBMIT);
        let ctx = root.ctx();
        std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    assert!(current().is_none());
                    let _g = enter_ctx(ctx);
                    assert_eq!(current(), ctx);
                    let child = span(names::SHARDS_SUBMIT);
                    assert_eq!(
                        child.ctx().map(|c| c.trace_id),
                        ctx.map(|c| c.trace_id),
                        "child joins the entered trace"
                    );
                })
                .join()
                .expect("spawned thread");
        });
        assert_eq!(current(), ctx);
        drop(root);
        set_enabled(false);
        assert!(current().is_none());
    }

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let a = next_id();
        let b = next_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn declared_names_are_unique_and_dotted() {
        for (i, a) in names::ALL.iter().enumerate() {
            assert!(a.contains('.'), "{a} is not dotted");
            for b in &names::ALL[i + 1..] {
                assert_ne!(a, b, "duplicate span name");
            }
        }
    }
}
