//! Plain-data snapshots of a registry, mergeable across layers.

use crate::hist::HistogramSnapshot;
use crate::journal::TraceEvent;

/// Slow ops a merged snapshot retains (the slowest win).
const MERGED_SLOW_CAP: usize = 64;

/// A point-in-time copy of a [`MetricsRegistry`](crate::MetricsRegistry):
/// sorted `(name, value)` lists plus the captured slow ops. Pure data —
/// cloneable, comparable, and encodable by whoever owns a wire format.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Captured slow ops (each source's capture, merged by slowness).
    pub slow_ops: Vec<TraceEvent>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Adds `v` to the counter named `name`, creating it if absent
    /// (insertion keeps the list sorted).
    pub fn add_counter(&mut self, name: &str, v: u64) {
        match self
            .counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
        {
            Ok(i) => self.counters[i].1 += v,
            Err(i) => self.counters.insert(i, (name.to_string(), v)),
        }
    }

    /// Adds `v` to the gauge named `name`, creating it if absent.
    pub fn add_gauge(&mut self, name: &str, v: i64) {
        match self.gauges.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.gauges[i].1 += v,
            Err(i) => self.gauges.insert(i, (name.to_string(), v)),
        }
    }

    /// Folds `h` into the histogram named `name`, creating it if absent.
    pub fn add_histogram(&mut self, name: &str, h: &HistogramSnapshot) {
        match self
            .histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
        {
            Ok(i) => self.histograms[i].1.merge(h),
            Err(i) => self.histograms.insert(i, (name.to_string(), h.clone())),
        }
    }

    /// Folds another snapshot into this one: same-named counters and
    /// gauges add, same-named histograms merge bucket-wise, and the
    /// slow-op lists concatenate keeping the 64 slowest
    /// (timestamps from different sources share no epoch, so slowness is
    /// the only meaningful order).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            self.add_counter(name, *v);
        }
        for (name, v) in &other.gauges {
            self.add_gauge(name, *v);
        }
        for (name, h) in &other.histograms {
            self.add_histogram(name, h);
        }
        self.slow_ops.extend(other.slow_ops.iter().cloned());
        self.slow_ops
            .sort_by_key(|ev| std::cmp::Reverse(ev.duration_us));
        self.slow_ops.truncate(MERGED_SLOW_CAP);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values: &[u64]) -> HistogramSnapshot {
        let h = crate::Histogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn merge_sums_counters_and_keeps_sorted_order() {
        let mut a = MetricsSnapshot::default();
        a.add_counter("ops.read", 10);
        a.add_counter("bytes", 512);
        let mut b = MetricsSnapshot::default();
        b.add_counter("ops.read", 5);
        b.add_counter("ops.write", 1);
        a.merge(&b);
        assert_eq!(a.counter("ops.read"), Some(15));
        assert_eq!(a.counter("ops.write"), Some(1));
        assert_eq!(a.counter("bytes"), Some(512));
        let names: Vec<&str> = a.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["bytes", "ops.read", "ops.write"]);
        assert_eq!(a.counter("missing"), None);
    }

    #[test]
    fn merge_folds_histograms_and_gauges() {
        let mut a = MetricsSnapshot::default();
        a.add_gauge("conns", 2);
        a.add_histogram("lat", &hist(&[10, 20]));
        let mut b = MetricsSnapshot::default();
        b.add_gauge("conns", 3);
        b.add_histogram("lat", &hist(&[100_000]));
        a.merge(&b);
        assert_eq!(a.gauge("conns"), Some(5));
        let h = a.histogram("lat").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.max, 100_000);
    }

    #[test]
    fn merged_slow_ops_keep_the_slowest() {
        let event = |d: u64| TraceEvent {
            t_us: 0,
            kind: "read".into(),
            shard: 0,
            bytes: 0,
            duration_us: d,
            ok: true,
        };
        let mut a = MetricsSnapshot {
            slow_ops: (0..60).map(event).collect(),
            ..Default::default()
        };
        let b = MetricsSnapshot {
            slow_ops: (1000..1010).map(event).collect(),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.slow_ops.len(), MERGED_SLOW_CAP);
        assert_eq!(a.slow_ops[0].duration_us, 1009);
        assert!(a.slow_ops.iter().all(|e| e.duration_us >= 6));
    }
}
