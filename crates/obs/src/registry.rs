//! The metrics registry: named atomic counters, gauges, and histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::hist::Histogram;
use crate::journal::Journal;
use crate::snapshot::MetricsSnapshot;

/// Reserved metric names, declared once.
///
/// Most metric names are free-form (the counter-discipline lint only
/// asks that each one has a consumer), but the cache tier's `cache.*`
/// and `wb.*` families are part of the documented interface: CI smokes
/// assert on them and dashboards key on them, so a typo'd name is a
/// silent hole. Registration sites reference these constants — the
/// `counter-discipline` lint rejects a `cache.*`/`wb.*` string literal
/// at a metric sink outside this file, exactly as `span-discipline`
/// does for span names.
pub mod metric_names {
    /// Read served from a cached frame (or the write-back buffer).
    pub const CACHE_HIT: &str = "cache.hit";
    /// Read block absent (or stale) in the cache.
    pub const CACHE_MISS: &str = "cache.miss";
    /// Block filled into the cache from the inner device.
    pub const CACHE_FILL: &str = "cache.fill";
    /// Live frame evicted by the CLOCK hand to make room.
    pub const CACHE_EVICT: &str = "cache.evict";
    /// Cached block updated or dropped by a write, or a whole-cache
    /// generation bump (scrub/repair/fault).
    pub const CACHE_INVALIDATE: &str = "cache.invalidate";
    /// Write op absorbed into the write-back buffer (volatile ack).
    pub const WB_ABSORBED: &str = "wb.absorbed";
    /// Write-back drains (group-commit tick, pressure, or `flush()`).
    pub const WB_FLUSHED: &str = "wb.flushed";
    /// Coalesced write ops submitted by write-back drains.
    pub const WB_COALESCED: &str = "wb.coalesced_ops";

    /// Every reserved metric name (the lint checks literals against
    /// the `cache.`/`wb.` prefixes of this set).
    pub const ALL: &[&str] = &[
        CACHE_HIT,
        CACHE_MISS,
        CACHE_FILL,
        CACHE_EVICT,
        CACHE_INVALIDATE,
        WB_ABSORBED,
        WB_FLUSHED,
        WB_COALESCED,
    ];
}

/// A monotonically increasing counter handle. Clones share the cell.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can move both ways. Clones share the
/// cell.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A registry of named metrics plus an embedded trace [`Journal`].
///
/// Registration (`counter`/`gauge`/`histogram`) takes a short lock to
/// look up or create the named cell and hands back a lock-free handle;
/// hot paths register once and increment forever. [`snapshot`] walks
/// the registered names (sorted — `BTreeMap` order) and copies every
/// cell into plain data.
///
/// [`snapshot`]: MetricsRegistry::snapshot
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    journal: Journal,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string()).or_default().clone()
    }

    /// The embedded trace journal (ring buffer + slow-op capture).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Convenience: journal one completed op.
    pub fn record_op(&self, kind: &str, shard: u32, bytes: u64, duration: Duration, ok: bool) {
        self.journal.record(kind, shard, bytes, duration, ok);
    }

    /// A point-in-time copy of every registered metric plus the
    /// journal's slow ops, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            slow_ops: self.journal.slow_ops(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("ops");
        let b = reg.counter("ops");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("ops").get(), 3);

        let g = reg.gauge("depth");
        g.set(5);
        reg.gauge("depth").add(-2);
        assert_eq!(g.get(), 3);

        reg.histogram("lat").record(100);
        assert_eq!(reg.histogram("lat").count(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.gauge("mid").set(-7);
        reg.histogram("lat").record(42);
        reg.journal().set_slow_threshold_us(0);
        reg.record_op("read", 1, 64, Duration::from_micros(9), true);

        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.first".to_string(), 2), ("z.last".to_string(), 1)]
        );
        assert_eq!(snap.gauges, vec![("mid".to_string(), -7)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count(), 1);
        assert_eq!(snap.slow_ops.len(), 1);
        assert_eq!(snap.slow_ops[0].kind, "read");
    }
}
