//! Dependency-free observability for the stair stack.
//!
//! Three layers, all safe to hammer from many threads:
//!
//! * **[`MetricsRegistry`]** — named [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket log₂ latency [`Histogram`]s. Registration (name →
//!   handle) takes a lock once; the handles themselves are `Arc`-backed
//!   atomics, so the hot path is lock-free relaxed increments.
//! * **[`Journal`]** — a bounded ring buffer of structured
//!   [`TraceEvent`]s (monotonic timestamp, op kind, shard, byte count,
//!   duration, outcome) with a **slow-op capture**: events whose
//!   duration exceeds a configurable threshold are retained in their own
//!   ring with full context, so the outliers survive long after the
//!   main ring has wrapped.
//! * **[`trace`]** — request-scoped span trees: every layer of one
//!   operation opens a named, timed span, context crosses threads and
//!   (via protocol v3) the wire, and completed traces land in a
//!   per-process [`FlightRecorder`] whose slow/errored ring survives
//!   the main ring's wrap — the journal's slow-op idiom, one level up.
//! * **[`MetricsSnapshot`]** — a point-in-time, plain-data copy of
//!   everything above. Snapshots merge (counters sum, histograms add
//!   bucket-wise), which is how per-shard and per-layer views fold into
//!   one report, and serialize trivially (the wire and JSON encodings
//!   live with the protocol/CLI, keeping this crate dependency-free).
//!
//! Histogram buckets are powers of two: bucket `i` holds values whose
//! bit width is `i` (bucket 0 = {0}, bucket 1 = {1}, bucket 2 = 2–3,
//! bucket 3 = 4–7, …). A quantile estimate returns the bucket's upper
//! bound clamped to the observed maximum, so estimates are exact to
//! within one bucket: `exact ≤ estimate < 2 × exact`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod journal;
mod registry;
mod snapshot;
pub mod trace;

pub use hist::{bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS};
pub use journal::{Journal, TraceEvent, DEFAULT_SLOW_THRESHOLD_US};
pub use registry::{metric_names, Counter, Gauge, MetricsRegistry};
pub use snapshot::MetricsSnapshot;
pub use trace::{FlightRecorder, SpanCtx, SpanRecord, TraceRecord};
