//! Fixed-bucket log₂ histograms for latency (or any `u64`) samples.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bucket count: one per possible bit width of a `u64` (0..=64).
pub const BUCKETS: usize = 65;

/// The largest value bucket `i` holds: 0 for bucket 0, `2^i - 1`
/// otherwise (saturating at `u64::MAX` for the last bucket).
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// Which bucket a value lands in: its bit width.
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

struct Inner {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

/// A lock-free log₂ histogram handle. Clones share the same cells, so a
/// handle registered once can be recorded into from any thread.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            inner: Arc::new(Inner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let inner = &self.inner;
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded so far (the sum of all bucket counts, so
    /// a concurrent snapshot can never show a count the buckets do not
    /// back).
    pub fn count(&self) -> u64 {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// A point-in-time plain-data copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets: Vec<u64> = self
            .inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            buckets,
            sum: self.inner.sum.load(Ordering::Relaxed),
            max: self.inner.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: plain data, mergeable,
/// serializable by whoever owns a wire or JSON format.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts, trailing zero buckets trimmed (index =
    /// bit width of the samples it holds; never longer than
    /// [`BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Total samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 1]`: the upper
    /// bound of the bucket holding the rank-`⌈q·count⌉` sample, clamped
    /// to the observed maximum. For the exact nearest-rank value `x`
    /// this guarantees `x ≤ estimate < 2·x` (and `estimate = 0` iff
    /// `x = 0`). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate in the same units as the samples.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds another snapshot into this one: buckets add pairwise, sums
    /// add, max takes the max.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_bit_widths() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(255), 8);
        assert_eq!(bucket_index(256), 9);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn quantiles_bound_the_exact_nearest_rank() {
        let h = Histogram::new();
        let samples: Vec<u64> = (1..=1000).collect();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.sum, 500500);
        // Exact nearest-rank p50 of 1..=1000 is 500 (bucket 9, upper
        // 511); p99 is 990 (bucket 10, upper 1023, clamped to max).
        assert_eq!(snap.p50(), 511);
        assert_eq!(snap.p99(), 1000);
    }

    #[test]
    fn empty_and_single_sample_edge_cases() {
        let h = Histogram::new();
        let empty = h.snapshot();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.mean(), 0.0);
        h.record(0);
        let zero = h.snapshot();
        assert_eq!(zero.count(), 1);
        assert_eq!(zero.p50(), 0);
        assert_eq!(zero.p99(), 0);
        h.record(7);
        let snap = h.snapshot();
        assert_eq!(snap.p99(), 7);
        assert_eq!(snap.max, 7);
    }

    #[test]
    fn merge_adds_buckets_and_keeps_max() {
        let a = Histogram::new();
        a.record(3);
        a.record(100);
        let b = Histogram::new();
        b.record(5000);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.sum, 5103);
        assert_eq!(snap.max, 5000);
        assert_eq!(snap.p99(), 5000);
    }
}
