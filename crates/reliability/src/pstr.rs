//! Per-chunk failure distributions and the general `P_str` enumerator.

// Coordinate-indexed loops mirror the paper's (row, column) notation and
// stay symmetric with the write side; iterator adaptors would obscure that.
#![allow(clippy::needless_range_loop)]
use crate::BurstModel;

/// A sector-failure model (§7.1.2): how sector failures are distributed
/// within a chunk of `r` sectors.
#[derive(Clone, Debug, PartialEq)]
pub enum SectorModel {
    /// Independent sector failures (Eq. 13).
    Independent,
    /// Correlated failures arriving as bursts (Eqs. 14–17).
    Correlated(BurstModel),
}

/// The erasure scheme whose sector-failure coverage defines `P_str`.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum Scheme {
    /// Reed–Solomon: no sector failures tolerated in critical mode.
    ReedSolomon,
    /// A STAIR code with coverage vector `e` (non-decreasing).
    Stair(Vec<usize>),
    /// An SD code tolerating any `s` sector failures in critical mode.
    Sd(usize),
}

impl Scheme {
    /// Convenience constructor for Reed–Solomon.
    pub fn reed_solomon() -> Self {
        Scheme::ReedSolomon
    }

    /// Convenience constructor for a STAIR scheme.
    ///
    /// # Panics
    ///
    /// Panics if `e` is empty, contains zero, or is not non-decreasing.
    pub fn stair(e: &[usize]) -> Self {
        assert!(
            !e.is_empty() && !e.contains(&0),
            "e must be non-empty and positive"
        );
        assert!(
            e.windows(2).all(|w| w[0] <= w[1]),
            "e must be non-decreasing"
        );
        Scheme::Stair(e.to_vec())
    }

    /// Convenience constructor for an SD scheme.
    pub fn sd(s: usize) -> Self {
        Scheme::Sd(s)
    }

    /// The number of parity sectors (beyond parity devices) the scheme
    /// spends per stripe: 0 for RS, `s` for SD and STAIR.
    pub fn s(&self) -> usize {
        match self {
            Scheme::ReedSolomon => 0,
            Scheme::Stair(e) => e.iter().sum(),
            Scheme::Sd(s) => *s,
        }
    }

    /// Whether a vector of per-chunk sector-failure counts (for the `n − m`
    /// non-failed chunks, any order) is within the scheme's critical-mode
    /// coverage. Used by the Monte-Carlo cross-check in `stair-arraysim`.
    pub fn covers_counts(&self, counts: &[usize]) -> bool {
        let mut desc: Vec<usize> = counts.iter().copied().filter(|&c| c > 0).collect();
        desc.sort_unstable_by(|a, b| b.cmp(a));
        self.covers_desc(&desc)
    }

    /// The maximum number of chunks that may carry sector failures.
    fn max_nonzero_chunks(&self) -> usize {
        match self {
            Scheme::ReedSolomon => 0,
            Scheme::Stair(e) => e.len(),
            Scheme::Sd(s) => *s,
        }
    }

    /// Whether a non-increasing vector of per-chunk failure counts is
    /// within the scheme's critical-mode coverage.
    fn covers_desc(&self, counts_desc: &[usize]) -> bool {
        match self {
            Scheme::ReedSolomon => counts_desc.is_empty(),
            Scheme::Sd(s) => counts_desc.iter().sum::<usize>() <= *s,
            Scheme::Stair(e) => {
                let m_prime = e.len();
                if counts_desc.len() > m_prime {
                    return false;
                }
                counts_desc
                    .iter()
                    .enumerate()
                    .all(|(i, &c)| c <= e[m_prime - 1 - i])
            }
        }
    }
}

/// Sector-failure probability from the bit-error rate: Eq. (12),
/// `P_sec = 1 − (1 − P_bit)^(8·S)` for an `S`-byte sector.
pub fn p_sec(p_bit: f64, sector_bytes: usize) -> f64 {
    assert!((0.0..=1.0).contains(&p_bit), "P_bit must be a probability");
    // 1 − (1 − p)^k computed as −expm1(k·ln1p(−p)) to avoid catastrophic
    // cancellation at realistic P_bit (1e-14 .. 1e-10).
    -((8.0 * sector_bytes as f64) * (-p_bit).ln_1p()).exp_m1()
}

/// The per-chunk failure distribution `P_chk(0..=r)` (Eqs. 13, 15, 17).
///
/// # Panics
///
/// Panics if `r` is zero or the correlated model was truncated at a
/// different chunk size.
pub fn p_chk(model: &SectorModel, psec: f64, r: usize) -> Vec<f64> {
    assert!(r > 0, "r must be positive");
    match model {
        SectorModel::Independent => (0..=r)
            .map(|i| binomial(r, i) * psec.powi(i as i32) * (1.0 - psec).powi((r - i) as i32))
            .collect(),
        SectorModel::Correlated(burst) => {
            assert_eq!(
                burst.max_len(),
                r,
                "burst model truncation must match the chunk size"
            );
            let b = burst.mean();
            // Eq. (15): P_chk(0) = (1 − P_sec/B)^r; Eq. (17):
            // P_chk(i) = b_i · r · P_sec/B.
            let start = psec / b;
            let mut out = vec![0.0; r + 1];
            out[0] = (1.0 - start).powi(r as i32);
            for i in 1..=r {
                out[i] = burst.fraction(i) * (r as f64) * start;
            }
            // The simplified model leaves a small normalization slack
            // (the paper's Eqs. 15–17 are first-order approximations);
            // fold it into P_chk(0) so the distribution is proper.
            let sum: f64 = out.iter().sum();
            out[0] += 1.0 - sum;
            out
        }
    }
}

/// `P_str`: probability that a stripe in critical mode has unrecoverable
/// sector failures in its `n − m` non-failed chunks (§7.1.1, Appendix B) —
/// computed by exact enumeration of per-chunk failure counts, supporting
/// *any* coverage vector.
pub fn p_str(scheme: &Scheme, n: usize, m: usize, pchk: &[f64]) -> f64 {
    assert!(n > m, "need n > m");
    let chunks = n - m;
    let r = pchk.len() - 1;
    let max_k = scheme.max_nonzero_chunks().min(chunks);
    // P(covered) = Σ over non-increasing count vectors (c_1 ≥ … ≥ c_k ≥ 1)
    // within coverage of: #arrangements · Π P_chk(c_i) · P_chk(0)^(chunks−k).
    let mut covered = 0.0;
    let mut counts: Vec<usize> = Vec::new();
    enumerate(&mut counts, r, max_k, &mut |desc: &[usize]| {
        if !scheme.covers_desc(desc) {
            return;
        }
        let k = desc.len();
        let mut weight = choose(chunks, k) * perm_multiset(desc);
        for &c in desc {
            weight *= pchk[c];
        }
        weight *= pchk[0].powi((chunks - k) as i32);
        covered += weight;
    });
    (1.0 - covered).max(0.0)
}

/// Enumerates all non-increasing vectors with entries in `1..=max_val` and
/// length `0..=max_len`, invoking `f` on each (including the empty vector).
fn enumerate(
    counts: &mut Vec<usize>,
    max_val: usize,
    max_len: usize,
    f: &mut impl FnMut(&[usize]),
) {
    f(counts);
    if counts.len() == max_len {
        return;
    }
    let upper = counts.last().copied().unwrap_or(max_val);
    for v in (1..=upper).rev() {
        counts.push(v);
        enumerate(counts, max_val, max_len, f);
        counts.pop();
    }
}

/// Number of distinct assignments of a non-increasing count multiset onto
/// `k` labelled chunks: `k! / Π mult_v!`.
fn perm_multiset(desc: &[usize]) -> f64 {
    let k = desc.len();
    let mut denom = 1.0;
    let mut run = 1usize;
    for i in 1..k {
        if desc[i] == desc[i - 1] {
            run += 1;
        } else {
            denom *= factorial(run);
            run = 1;
        }
    }
    denom *= factorial(run.max(1));
    factorial(k) / denom
}

fn factorial(n: usize) -> f64 {
    (1..=n).map(|i| i as f64).product()
}

fn binomial(n: usize, k: usize) -> f64 {
    choose(n, k)
}

fn choose(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psec_approximation_matches_eq_12() {
        // P_sec ≈ 8·S·P_bit for small P_bit.
        let p = p_sec(1e-14, 512);
        assert!((p - 512.0 * 8.0 * 1e-14).abs() / p < 1e-6);
    }

    #[test]
    fn independent_pchk_is_binomial_and_sums_to_one() {
        let pchk = p_chk(&SectorModel::Independent, 0.01, 8);
        assert_eq!(pchk.len(), 9);
        assert!((pchk.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((pchk[1] - 8.0 * 0.01 * 0.99f64.powi(7)).abs() < 1e-12);
    }

    #[test]
    fn correlated_pchk_sums_to_one() {
        let burst = BurstModel::from_pareto(0.98, 1.79, 16);
        let pchk = p_chk(&SectorModel::Correlated(burst), 1e-6, 16);
        assert!((pchk.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Multi-sector chunks are possible under bursts.
        assert!(pchk[2] > 0.0 && pchk[4] > 0.0);
    }

    #[test]
    fn rs_pstr_matches_complement_of_no_failures() {
        let pchk = p_chk(&SectorModel::Independent, 1e-4, 16);
        let p = p_str(&Scheme::reed_solomon(), 8, 1, &pchk);
        let expect = 1.0 - pchk[0].powi(7);
        assert!((p - expect).abs() < 1e-15);
    }

    #[test]
    fn coverage_ordering_reduces_pstr() {
        // A strictly wider coverage must give a strictly smaller P_str.
        let pchk = p_chk(&SectorModel::Independent, 1e-4, 16);
        let p_rs = p_str(&Scheme::reed_solomon(), 8, 1, &pchk);
        let p_e1 = p_str(&Scheme::stair(&[1]), 8, 1, &pchk);
        let p_e11 = p_str(&Scheme::stair(&[1, 1]), 8, 1, &pchk);
        let p_e12 = p_str(&Scheme::stair(&[1, 2]), 8, 1, &pchk);
        let p_sd3 = p_str(&Scheme::sd(3), 8, 1, &pchk);
        assert!(p_rs > p_e1 && p_e1 > p_e11 && p_e11 > p_e12);
        // SD with s=3 covers every pattern STAIR e=(1,2) covers, and more.
        assert!(p_sd3 <= p_e12);
    }

    #[test]
    fn stair_e1_equals_sd_s1() {
        // §2: e = (1) is exactly a PMDS/SD code with s = 1.
        let pchk = p_chk(&SectorModel::Independent, 1e-5, 8);
        let a = p_str(&Scheme::stair(&[1]), 10, 1, &pchk);
        let b = p_str(&Scheme::sd(1), 10, 1, &pchk);
        assert!((a - b).abs() < 1e-18);
    }

    #[test]
    fn multiset_permutations() {
        assert_eq!(perm_multiset(&[]), 1.0);
        assert_eq!(perm_multiset(&[3]), 1.0);
        assert_eq!(perm_multiset(&[2, 1]), 2.0);
        assert_eq!(perm_multiset(&[1, 1]), 1.0);
        assert_eq!(perm_multiset(&[2, 1, 1]), 3.0);
    }

    #[test]
    fn scheme_validation() {
        assert_eq!(Scheme::stair(&[1, 2]).s(), 3);
        assert_eq!(Scheme::sd(2).s(), 2);
        assert_eq!(Scheme::reed_solomon().s(), 0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn stair_scheme_rejects_decreasing_e() {
        let _ = Scheme::stair(&[2, 1]);
    }
}
