//! Sector-failure burst-length distributions (§7.1.2, Fig. 19(a)).
//!
//! Schroeder et al. [41] found that burst lengths follow a distribution
//! well described by a pair `(b1, α)`: a fraction `b1` of bursts have
//! length one, and lengths greater than one follow a Pareto distribution
//! with tail index `α`. We discretize that fit as
//!
//! ```text
//! P(L ≥ i | L ≥ 2) = (i / 2)^(−α)   for i ≥ 2,
//! ```
//!
//! truncated at the chunk size `r` (the paper's simplifying assumption that
//! a burst never exceeds one chunk) and renormalized.

/// A discrete burst-length distribution `b_1 .. b_r` with `Σ b_i = 1`.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BurstModel {
    b: Vec<f64>,
}

impl BurstModel {
    /// Builds the `(b1, α)` Pareto-tail model truncated at length `max_len`
    /// (the chunk size `r`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < b1 ≤ 1`, `α > 0`, and `max_len ≥ 1`.
    pub fn from_pareto(b1: f64, alpha: f64, max_len: usize) -> Self {
        assert!(b1 > 0.0 && b1 <= 1.0, "b1 must be in (0, 1]");
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(max_len >= 1, "max_len must be at least 1");
        let mut b = vec![0.0; max_len];
        b[0] = b1;
        if max_len > 1 {
            let tail = |i: f64| (i / 2.0).powf(-alpha);
            // Truncate P(L = i | L ≥ 2) ∝ tail(i) − tail(i+1) at max_len.
            let mut probs: Vec<f64> = (2..=max_len)
                .map(|i| tail(i as f64) - tail(i as f64 + 1.0))
                .collect();
            // Fold the chopped-off tail mass into the last bucket so the
            // distribution sums to one.
            let cut = tail(max_len as f64 + 1.0);
            if let Some(last) = probs.last_mut() {
                *last += cut;
            }
            let scale = (1.0 - b1) / probs.iter().sum::<f64>();
            for (i, p) in probs.into_iter().enumerate() {
                b[i + 1] = p * scale;
            }
        }
        BurstModel { b }
    }

    /// A degenerate model where every burst has length one (equivalent to
    /// independent single-sector failures at the chunk level).
    pub fn single_sector(max_len: usize) -> Self {
        let mut b = vec![0.0; max_len.max(1)];
        b[0] = 1.0;
        BurstModel { b }
    }

    /// `b_i`: the fraction of bursts with length `i` (1-based; zero beyond
    /// the truncation point).
    pub fn fraction(&self, len: usize) -> f64 {
        if len == 0 || len > self.b.len() {
            0.0
        } else {
            self.b[len - 1]
        }
    }

    /// The truncation length (chunk size `r`).
    pub fn max_len(&self) -> usize {
        self.b.len()
    }

    /// The mean burst length `B = Σ i · b_i` (Eq. 14).
    pub fn mean(&self) -> f64 {
        self.b
            .iter()
            .enumerate()
            .map(|(i, &p)| (i + 1) as f64 * p)
            .sum()
    }

    /// The cumulative distribution `P(L ≤ i)` (Fig. 19(a)).
    pub fn cdf(&self, len: usize) -> f64 {
        self.b.iter().take(len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_sums_to_one_and_b1_is_exact() {
        for &(b1, a) in &[(0.9, 1.0), (0.98, 1.79), (0.99, 2.0), (0.9999, 4.0)] {
            let m = BurstModel::from_pareto(b1, a, 16);
            assert!((m.cdf(16) - 1.0).abs() < 1e-12, "({b1},{a})");
            assert!((m.fraction(1) - b1).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_burst_length_is_close_to_one_for_field_fits() {
        // §7.1.2: "the average length B is close to one sector
        // (e.g., B = 1.0291)". The D-2 fit (b1=0.98, α=1.79) should give a
        // mean just above 1.
        let m = BurstModel::from_pareto(0.98, 1.79, 16);
        let b = m.mean();
        assert!(b > 1.0 && b < 1.2, "B = {b}");
    }

    #[test]
    fn smaller_b1_and_alpha_mean_burstier() {
        // Fig. 19(a): (0.9, 1) is the burstiest of the plotted pairs.
        let bursty = BurstModel::from_pareto(0.9, 1.0, 16);
        let mild = BurstModel::from_pareto(0.9999, 4.0, 16);
        for i in 1..16 {
            assert!(bursty.cdf(i) <= mild.cdf(i) + 1e-12, "i={i}");
        }
        assert!(bursty.mean() > mild.mean());
    }

    #[test]
    fn single_sector_model() {
        let m = BurstModel::single_sector(8);
        assert_eq!(m.fraction(1), 1.0);
        assert_eq!(m.fraction(2), 0.0);
        assert_eq!(m.mean(), 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn pareto_validation() {
        let _ = BurstModel::from_pareto(0.9, 0.0, 8);
    }
}
