//! Choosing the sector-failure coverage `e` (§7.2.2's closing discussion):
//! the best shape depends on *how* sectors fail — bursty failure modes
//! favour deep coverage `e = (s)`, scattered failures favour spreading the
//! budget across chunks.

use crate::{Scheme, SectorModel, SystemParams};

/// A ranked coverage recommendation.
#[derive(Clone, Debug, PartialEq)]
pub struct Recommendation {
    /// The winning coverage vector.
    pub e: Vec<usize>,
    /// Its system MTTDL in hours.
    pub mttdl_hours: f64,
    /// Parity sectors spent (`s = Σ e`).
    pub s: usize,
}

/// Evaluates every non-decreasing coverage vector with `Σ e ≤ max_s`,
/// `len(e) ≤ n − m`, and `e_max ≤ r`, and returns them best-first by
/// MTTDL (ties broken toward fewer parity sectors).
///
/// # Panics
///
/// Panics if `max_s` is zero.
pub fn rank_coverages(
    params: &SystemParams,
    model: &SectorModel,
    p_bit: f64,
    max_s: usize,
) -> Vec<Recommendation> {
    assert!(max_s > 0, "need a positive parity budget");
    let mut out = Vec::new();
    for s in 1..=max_s {
        for e in partitions(s) {
            if e.len() > params.n - 1 || *e.last().expect("non-empty") > params.r {
                continue;
            }
            let mttdl = params.mttdl_sys(&Scheme::stair(&e), model, p_bit);
            out.push(Recommendation {
                s,
                e,
                mttdl_hours: mttdl,
            });
        }
    }
    out.sort_by(|a, b| {
        b.mttdl_hours
            .partial_cmp(&a.mttdl_hours)
            .expect("MTTDL is finite")
            .then(a.s.cmp(&b.s))
    });
    out
}

/// The single best coverage within the budget.
///
/// # Panics
///
/// Panics if `max_s` is zero.
pub fn recommend_e(
    params: &SystemParams,
    model: &SectorModel,
    p_bit: f64,
    max_s: usize,
) -> Recommendation {
    rank_coverages(params, model, p_bit, max_s)
        .into_iter()
        .next()
        .expect("max_s ≥ 1 yields at least e = (1)")
}

/// All non-decreasing partitions of `s`.
fn partitions(s: usize) -> Vec<Vec<usize>> {
    fn rec(remaining: usize, max: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining == 0 {
            let mut e = cur.clone();
            e.reverse();
            out.push(e);
            return;
        }
        for next in (1..=remaining.min(max)).rev() {
            cur.push(next);
            rec(remaining - next, next, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    rec(s, s, &mut Vec::new(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use crate::BurstModel;

    use super::*;

    /// §7.2.2: under bursty failures the recommendation is burst-deep —
    /// e_max equals the whole budget.
    #[test]
    fn bursty_failures_recommend_deep_coverage() {
        let params = SystemParams::paper_defaults();
        let model = SectorModel::Correlated(BurstModel::from_pareto(0.9, 1.0, params.r));
        let rec = recommend_e(&params, &model, 1e-12, 3);
        assert_eq!(rec.e, vec![3], "got {rec:?}");
    }

    /// Fig. 17(b): under independent failures with a 3-sector budget,
    /// e = (1,2) is the most reliable shape.
    #[test]
    fn independent_failures_recommend_spread_coverage() {
        let params = SystemParams::paper_defaults();
        let rec = recommend_e(&params, &SectorModel::Independent, 1e-11, 3);
        assert_eq!(rec.e, vec![1, 2], "got {rec:?}");
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let params = SystemParams::paper_defaults();
        let ranked = rank_coverages(&params, &SectorModel::Independent, 1e-12, 3);
        // partitions: (1), (2), (1,1), (3), (1,2), (1,1,1) = 6 entries.
        assert_eq!(ranked.len(), 6);
        assert!(ranked
            .windows(2)
            .all(|w| w[0].mttdl_hours >= w[1].mttdl_hours));
    }

    #[test]
    fn partitions_count_matches_integer_partitions() {
        assert_eq!(partitions(4).len(), 5);
        assert_eq!(partitions(6).len(), 11);
    }
}
