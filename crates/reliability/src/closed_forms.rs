//! The closed-form `P_str` expressions of Appendix B, kept as an
//! independent implementation to cross-check the general enumerator in
//! [`crate::p_str`].

/// Eq. (18): Reed–Solomon.
pub fn pstr_rs_closed(n: usize, m: usize, pchk: &[f64]) -> f64 {
    let c = (n - m) as f64;
    1.0 - pchk[0].powf(c)
}

/// Appendix B.2: STAIR codes for the special shapes the paper writes out —
/// `e = (s)`, `(1, s−1)`, `(2, s−2)`, `(1, 1, s−2)`, and `(1, …, 1)`.
///
/// Returns `None` for other shapes (use the general enumerator instead).
pub fn pstr_stair_closed(e: &[usize], n: usize, m: usize, pchk: &[f64]) -> Option<f64> {
    let c = (n - m) as f64;
    let p0 = pchk[0];
    let s: usize = e.iter().sum();
    let choose = |n: f64, k: usize| -> f64 {
        let mut acc = 1.0;
        for i in 0..k {
            acc *= (n - i as f64) / (i as f64 + 1.0);
        }
        acc
    };
    match e {
        // Eq. (19): e = (s)
        [es] => {
            let sum1: f64 = (1..=*es).map(|i| pchk[i]).sum();
            Some(1.0 - p0.powf(c) - c * sum1 * p0.powf(c - 1.0))
        }
        // Eq. (23): e = (1, 1, ..., 1)
        ones if ones.iter().all(|&x| x == 1) => {
            let total: f64 = (0..=s)
                .map(|i| choose(c, i) * pchk[1].powi(i as i32) * p0.powf(c - i as f64))
                .sum();
            Some(1.0 - total)
        }
        // Eq. (20): e = (1, s−1), s ≥ 2
        [1, tail] => {
            let t = *tail;
            let mut covered = p0.powf(c);
            covered += c * (1..=t).map(|i| pchk[i]).sum::<f64>() * p0.powf(c - 1.0);
            covered += choose(c, 2) * pchk[1] * pchk[1] * p0.powf(c - 2.0);
            covered +=
                c * (c - 1.0) * (2..=t).map(|i| pchk[i]).sum::<f64>() * pchk[1] * p0.powf(c - 2.0);
            Some(1.0 - covered)
        }
        // Eq. (21): e = (2, s−2), s ≥ 4
        [2, tail] if *tail >= 2 => {
            let t = *tail;
            let mut covered = p0.powf(c);
            covered += c * (1..=t).map(|i| pchk[i]).sum::<f64>() * p0.powf(c - 1.0);
            covered += choose(c, 2) * pchk[1] * pchk[1] * p0.powf(c - 2.0);
            covered +=
                c * (c - 1.0) * (2..=t).map(|i| pchk[i]).sum::<f64>() * pchk[1] * p0.powf(c - 2.0);
            covered += choose(c, 2) * pchk[2] * pchk[2] * p0.powf(c - 2.0);
            covered +=
                c * (c - 1.0) * (3..=t).map(|i| pchk[i]).sum::<f64>() * pchk[2] * p0.powf(c - 2.0);
            Some(1.0 - covered)
        }
        // Eq. (22): e = (1, 1, s−2), s ≥ 3
        [1, 1, tail] => {
            let t = *tail;
            let mut covered = p0.powf(c);
            covered += c * (1..=t).map(|i| pchk[i]).sum::<f64>() * p0.powf(c - 1.0);
            covered += choose(c, 2) * pchk[1] * pchk[1] * p0.powf(c - 2.0);
            covered +=
                c * (c - 1.0) * (2..=t).map(|i| pchk[i]).sum::<f64>() * pchk[1] * p0.powf(c - 2.0);
            covered += choose(c, 3) * pchk[1].powi(3) * p0.powf(c - 3.0);
            covered += choose(c, 2)
                * (c - 2.0)
                * (2..=t).map(|i| pchk[i]).sum::<f64>()
                * pchk[1]
                * pchk[1]
                * p0.powf(c - 3.0);
            Some(1.0 - covered)
        }
        _ => None,
    }
}

/// Appendix B.3, Eqs. (24)–(26): SD codes with `s ≤ 3`.
///
/// Returns `None` for `s > 3` (no closed form is written out in the paper).
pub fn pstr_sd_closed(s: usize, n: usize, m: usize, pchk: &[f64]) -> Option<f64> {
    let c = (n - m) as f64;
    let p0 = pchk[0];
    let choose2 = c * (c - 1.0) / 2.0;
    let choose3 = c * (c - 1.0) * (c - 2.0) / 6.0;
    match s {
        1 => Some(1.0 - p0.powf(c) - c * pchk[1] * p0.powf(c - 1.0)),
        2 => {
            let mut covered = p0.powf(c);
            covered += c * (pchk[1] + pchk[2]) * p0.powf(c - 1.0);
            covered += choose2 * pchk[1] * pchk[1] * p0.powf(c - 2.0);
            Some(1.0 - covered)
        }
        3 => {
            let mut covered = p0.powf(c);
            covered += c * (pchk[1] + pchk[2] + pchk[3]) * p0.powf(c - 1.0);
            covered += choose2 * pchk[1] * pchk[1] * p0.powf(c - 2.0);
            covered += c * (c - 1.0) * pchk[2] * pchk[1] * p0.powf(c - 2.0);
            covered += choose3 * pchk[1].powi(3) * p0.powf(c - 3.0);
            Some(1.0 - covered)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use crate::{p_chk, p_str, BurstModel, Scheme, SectorModel};

    use super::*;

    fn models(r: usize) -> Vec<Vec<f64>> {
        vec![
            p_chk(&SectorModel::Independent, 1e-4, r),
            p_chk(&SectorModel::Independent, 1e-2, r),
            p_chk(
                &SectorModel::Correlated(BurstModel::from_pareto(0.98, 1.79, r)),
                1e-4,
                r,
            ),
            p_chk(
                &SectorModel::Correlated(BurstModel::from_pareto(0.9, 1.0, r)),
                1e-3,
                r,
            ),
        ]
    }

    #[test]
    fn enumerator_matches_rs_closed_form() {
        for pchk in models(16) {
            let a = p_str(&Scheme::reed_solomon(), 8, 1, &pchk);
            let b = pstr_rs_closed(8, 1, &pchk);
            assert!((a - b).abs() < 1e-15, "{a} vs {b}");
        }
    }

    #[test]
    fn enumerator_matches_stair_closed_forms() {
        let shapes: Vec<Vec<usize>> = vec![
            vec![1],
            vec![3],
            vec![1, 2],
            vec![1, 4],
            vec![2, 2],
            vec![2, 3],
            vec![1, 1, 1],
            vec![1, 1, 2],
            vec![1, 1, 1, 1],
        ];
        for pchk in models(16) {
            for e in &shapes {
                let Some(closed) = pstr_stair_closed(e, 8, 1, &pchk) else {
                    continue;
                };
                let enumerated = p_str(&Scheme::stair(e), 8, 1, &pchk);
                assert!(
                    (closed - enumerated).abs() < 1e-15 * (1.0 + closed.abs()),
                    "e={e:?}: closed {closed} vs enumerated {enumerated}"
                );
            }
        }
    }

    #[test]
    fn enumerator_matches_sd_closed_forms() {
        for pchk in models(16) {
            for s in 1..=3 {
                let closed = pstr_sd_closed(s, 8, 1, &pchk).unwrap();
                let enumerated = p_str(&Scheme::sd(s), 8, 1, &pchk);
                assert!(
                    (closed - enumerated).abs() < 1e-15 * (1.0 + closed.abs()),
                    "s={s}: closed {closed} vs enumerated {enumerated}"
                );
            }
        }
    }

    #[test]
    fn sd_closed_form_unavailable_beyond_3() {
        let pchk = p_chk(&SectorModel::Independent, 1e-4, 8);
        assert!(pstr_sd_closed(4, 8, 1, &pchk).is_none());
    }
}
