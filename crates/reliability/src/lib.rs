//! Analytical reliability models for STAIR, SD, and Reed–Solomon codes —
//! a reproduction of §7 and Appendix B of the STAIR paper.
//!
//! The model chain (Table 4 / Eqs. 7–17):
//!
//! 1. an unrecoverable bit-error rate `P_bit` gives a sector-failure
//!    probability `P_sec` (Eq. 12);
//! 2. a sector-failure model — [`SectorModel::Independent`] or
//!    [`SectorModel::Correlated`] with a Pareto burst-length distribution
//!    fitted by `(b1, α)` (Schroeder et al., the paper's ref. 41) — gives
//!    the per-chunk failure distribution
//!    `P_chk(i)` (Eqs. 13–17);
//! 3. a scheme's sector-failure coverage gives `P_str`, the probability
//!    that a stripe in critical mode is unrecoverable (Appendix B);
//! 4. `P_arr` (Eq. 11), a Markov model (Fig. 16, Eq. 10), and the array
//!    count `N_arr` (Eq. 7) give the system MTTDL (Eq. 9).
//!
//! `P_str` is computed by a *general enumerator* over per-chunk failure
//! counts, so any coverage vector `e` is supported; the closed forms of
//! Appendix B are also provided and tested against the enumerator.
//!
//! # Example
//!
//! ```
//! use stair_reliability::{Scheme, SectorModel, SystemParams};
//!
//! let params = SystemParams::paper_defaults();
//! let rs = params.mttdl_sys(&Scheme::reed_solomon(), &SectorModel::Independent, 1e-14);
//! let stair = params.mttdl_sys(&Scheme::stair(&[1]), &SectorModel::Independent, 1e-14);
//! // Fig. 17(a): one extra parity sector buys > two orders of magnitude.
//! assert!(stair > 100.0 * rs);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod burst;
mod closed_forms;
mod configure;
mod model;
mod pstr;

pub use burst::BurstModel;
pub use closed_forms::{pstr_rs_closed, pstr_sd_closed, pstr_stair_closed};
pub use configure::{rank_coverages, recommend_e, Recommendation};
pub use model::{narr, storage_efficiency, SystemParams};
pub use pstr::{p_chk, p_sec, p_str, Scheme, SectorModel};
