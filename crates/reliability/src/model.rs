//! System-level reliability: storage efficiency, array counts, and the
//! Markov MTTDL model (§7.1.1, Fig. 16).

use crate::{p_chk, p_sec, p_str, Scheme, SectorModel};

/// Storage efficiency `E = (r·(n−m) − s)/(r·n)` (Eq. 8).
pub fn storage_efficiency(n: usize, r: usize, m: usize, s: usize) -> f64 {
    assert!(n > m && r > 0, "need n > m and r > 0");
    assert!(r * (n - m) >= s, "s exceeds capacity");
    (r * (n - m) - s) as f64 / (r * n) as f64
}

/// Number of storage arrays needed for `user_bytes` of data (Eq. 7):
/// `N_arr = ⌈(U/E) / (C·n)⌉`.
pub fn narr(user_bytes: f64, efficiency: f64, device_capacity: f64, n: usize) -> u64 {
    assert!(efficiency > 0.0 && device_capacity > 0.0);
    (user_bytes / efficiency / (device_capacity * n as f64)).ceil() as u64
}

/// The full parameter set of §7.2's numerical evaluation.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SystemParams {
    /// Devices per array (`n`). The Markov model assumes `m = 1`.
    pub n: usize,
    /// Sectors per chunk (`r`).
    pub r: usize,
    /// Total user data in bytes (`U`).
    pub user_bytes: f64,
    /// Device capacity in bytes (`C`).
    pub device_capacity: f64,
    /// Sector size in bytes (`S`).
    pub sector_bytes: usize,
    /// Mean time to device failure `1/λ` in hours.
    pub mttf_hours: f64,
    /// Mean time to rebuild `1/µ` in hours.
    pub rebuild_hours: f64,
}

impl SystemParams {
    /// The configuration of §7.2: 10 PiB of user data on SATA drives with
    /// `C` = 300 GiB, `S` = 512 B, `1/λ` = 500 000 h, `1/µ` = 17.8 h,
    /// `n` = 8, `r` = 16, `m` = 1.
    ///
    /// (Binary units reproduce the paper's `N_arr` table exactly:
    /// `s = 0 → 4994`, `s = 12 → 5593`.)
    pub fn paper_defaults() -> Self {
        SystemParams {
            n: 8,
            r: 16,
            user_bytes: 10.0 * (1u64 << 50) as f64,
            device_capacity: 300.0 * (1u64 << 30) as f64,
            sector_bytes: 512,
            mttf_hours: 500_000.0,
            rebuild_hours: 17.8,
        }
    }

    /// `N_arr` for a scheme (Eq. 7 with Eq. 8), with `m = 1`.
    pub fn narr(&self, scheme: &Scheme) -> u64 {
        let e = storage_efficiency(self.n, self.r, 1, scheme.s());
        narr(self.user_bytes, e, self.device_capacity, self.n)
    }

    /// `P_arr`: probability that an array in critical mode encounters
    /// unrecoverable sector failures (Eq. 11, exact form).
    pub fn p_arr(&self, scheme: &Scheme, model: &SectorModel, p_bit: f64) -> f64 {
        let psec = p_sec(p_bit, self.sector_bytes);
        let pchk = p_chk(model, psec, self.r);
        let pstr = p_str(scheme, self.n, 1, &pchk);
        let stripes = (self.device_capacity / (self.sector_bytes as f64 * self.r as f64)).floor();
        1.0 - (1.0 - pstr).powf(stripes)
    }

    /// `MTTDL_arr` from the Markov model of Fig. 16 (Eq. 10), in hours.
    pub fn mttdl_arr(&self, scheme: &Scheme, model: &SectorModel, p_bit: f64) -> f64 {
        let n = self.n as f64;
        let lambda = 1.0 / self.mttf_hours;
        let mu = 1.0 / self.rebuild_hours;
        let parr = self.p_arr(scheme, model, p_bit);
        ((2.0 * n - 1.0) * lambda + mu) / (n * lambda * ((n - 1.0) * lambda + mu * parr))
    }

    /// `MTTDL_sys = MTTDL_arr / N_arr` (Eq. 9), in hours.
    pub fn mttdl_sys(&self, scheme: &Scheme, model: &SectorModel, p_bit: f64) -> f64 {
        self.mttdl_arr(scheme, model, p_bit) / self.narr(scheme) as f64
    }
}

#[cfg(test)]
mod tests {
    use crate::BurstModel;

    use super::*;

    /// §7.2: the `N_arr` table for s = 0..12 must reproduce exactly.
    #[test]
    fn narr_table_matches_paper() {
        let params = SystemParams::paper_defaults();
        let expected = [
            4994, 5039, 5085, 5131, 5179, 5227, 5276, 5327, 5378, 5430, 5483, 5538, 5593,
        ];
        for (s, &want) in expected.iter().enumerate() {
            let scheme = if s == 0 {
                Scheme::reed_solomon()
            } else {
                Scheme::sd(s)
            };
            assert_eq!(params.narr(&scheme), want, "s = {s}");
        }
    }

    /// Fig. 17(a): at P_bit = 1e-14 under independent failures, STAIR/SD
    /// with s = 1 beat RS by more than two orders of magnitude.
    #[test]
    fn fig17_one_parity_sector_buys_two_orders() {
        let params = SystemParams::paper_defaults();
        let model = SectorModel::Independent;
        let rs = params.mttdl_sys(&Scheme::reed_solomon(), &model, 1e-14);
        let s1 = params.mttdl_sys(&Scheme::stair(&[1]), &model, 1e-14);
        assert!(s1 / rs > 100.0, "ratio {}", s1 / rs);
    }

    /// Fig. 17(b): under independent failures with s = 3, e = (1,2) is the
    /// most reliable configuration (beats (3) and (1,1,1)).
    #[test]
    fn fig17b_e12_wins_under_independent_failures() {
        let params = SystemParams::paper_defaults();
        let model = SectorModel::Independent;
        let p_bit = 1e-11;
        let e12 = params.mttdl_sys(&Scheme::stair(&[1, 2]), &model, p_bit);
        let e3 = params.mttdl_sys(&Scheme::stair(&[3]), &model, p_bit);
        let e111 = params.mttdl_sys(&Scheme::stair(&[1, 1, 1]), &model, p_bit);
        assert!(e12 > e3, "e=(1,2) {e12} must beat e=(3) {e3}");
        assert!(e12 > e111, "e=(1,2) {e12} must beat e=(1,1,1) {e111}");
    }

    /// Fig. 18(b): under correlated bursts (b1=0.98, α=1.79), e = (s) is
    /// the most reliable shape and matches SD with the same s.
    #[test]
    fn fig18_es_wins_under_bursts() {
        let params = SystemParams::paper_defaults();
        let model = SectorModel::Correlated(BurstModel::from_pareto(0.98, 1.79, params.r));
        let p_bit = 1e-12;
        let e3 = params.mttdl_sys(&Scheme::stair(&[3]), &model, p_bit);
        let e12 = params.mttdl_sys(&Scheme::stair(&[1, 2]), &model, p_bit);
        let e111 = params.mttdl_sys(&Scheme::stair(&[1, 1, 1]), &model, p_bit);
        let sd3 = params.mttdl_sys(&Scheme::sd(3), &model, p_bit);
        assert!(e3 > e12 && e12 > e111);
        // "almost the same reliability as the SD code with the same s".
        assert!((e3 / sd3 - 1.0).abs() < 0.05, "e=(3) {e3} vs SD3 {sd3}");
    }

    /// Fig. 19(b): under bursty failures (b1 = 0.9, α = 1), e = (s) grows
    /// with s and always beats e = (1, s−1); under nearly-independent
    /// failures (b1 = 0.9999, α = 4) at high P_bit, the ordering can
    /// *invert* — the paper's observation that e = (1, s−1) is sometimes
    /// better when failures are scattered.
    #[test]
    fn fig19b_wide_e_matters_for_bursty_failures() {
        let params = SystemParams::paper_defaults();
        let bursty = SectorModel::Correlated(BurstModel::from_pareto(0.9, 1.0, params.r));
        let p_bit = 1e-14;
        let es: Vec<f64> = (2..=8)
            .map(|s| params.mttdl_sys(&Scheme::stair(&[s]), &bursty, p_bit))
            .collect();
        assert!(
            es.windows(2).all(|w| w[1] > w[0]),
            "e=(s) must grow with s: {es:?}"
        );
        for s in 2..=8usize {
            let e_s = params.mttdl_sys(&Scheme::stair(&[s]), &bursty, p_bit);
            let e_1s = params.mttdl_sys(&Scheme::stair(&[1, s - 1]), &bursty, p_bit);
            assert!(e_s > e_1s, "s={s}: e=(s) {e_s} must beat e=(1,s−1) {e_1s}");
        }
        let mild = SectorModel::Correlated(BurstModel::from_pareto(0.9999, 4.0, params.r));
        let inverted = (2..=8usize).any(|s| {
            params.mttdl_sys(&Scheme::stair(&[1, s - 1]), &mild, 1e-10)
                > params.mttdl_sys(&Scheme::stair(&[s]), &mild, 1e-10)
        });
        assert!(
            inverted,
            "mild bursts at high P_bit should favour e=(1,s−1) somewhere"
        );
    }

    /// MTTDL decreases monotonically in P_bit (power-law decrease regions
    /// of Figs. 17–18).
    #[test]
    fn mttdl_monotone_in_pbit() {
        let params = SystemParams::paper_defaults();
        let model = SectorModel::Independent;
        let mut last = f64::INFINITY;
        for &pb in &[1e-14, 1e-13, 1e-12, 1e-11, 1e-10] {
            let v = params.mttdl_sys(&Scheme::stair(&[2]), &model, pb);
            assert!(v < last);
            last = v;
        }
    }

    #[test]
    fn efficiency_and_narr_validation() {
        assert!((storage_efficiency(8, 16, 1, 0) - 0.875).abs() < 1e-12);
        assert_eq!(narr(100.0, 0.5, 10.0, 2), 10);
    }
}
