//! Property tests: every `Field` implementation must satisfy the field
//! axioms, since all erasure-coding correctness in the workspace rests on
//! them.

use proptest::prelude::*;
use stair_gf::{Field, Gf16, Gf4, Gf8};

macro_rules! axioms {
    ($modname:ident, $f:ty, $max:expr) => {
        mod $modname {
            use super::*;

            fn elem() -> impl Strategy<Value = <$f as Field>::Elem> {
                (0usize..=$max).prop_map(<$f>::elem)
            }

            proptest! {
                #[test]
                fn addition_is_commutative_and_self_inverse(a in elem(), b in elem()) {
                    prop_assert_eq!(<$f>::add(a, b), <$f>::add(b, a));
                    prop_assert_eq!(<$f>::add(<$f>::add(a, b), b), a);
                }

                #[test]
                fn multiplication_is_commutative_associative(
                    a in elem(), b in elem(), c in elem()
                ) {
                    prop_assert_eq!(<$f>::mul(a, b), <$f>::mul(b, a));
                    prop_assert_eq!(
                        <$f>::mul(<$f>::mul(a, b), c),
                        <$f>::mul(a, <$f>::mul(b, c))
                    );
                }

                #[test]
                fn multiplication_distributes_over_addition(
                    a in elem(), b in elem(), c in elem()
                ) {
                    prop_assert_eq!(
                        <$f>::mul(a, <$f>::add(b, c)),
                        <$f>::add(<$f>::mul(a, b), <$f>::mul(a, c))
                    );
                }

                #[test]
                fn identities_behave(a in elem()) {
                    prop_assert_eq!(<$f>::add(a, <$f>::zero()), a);
                    prop_assert_eq!(<$f>::mul(a, <$f>::one()), a);
                    prop_assert_eq!(<$f>::mul(a, <$f>::zero()), <$f>::zero());
                }

                #[test]
                fn inverse_and_division_agree(a in elem(), b in elem()) {
                    if b == <$f>::zero() {
                        prop_assert_eq!(<$f>::inv(b), None);
                        prop_assert_eq!(<$f>::div(a, b), None);
                    } else {
                        let q = <$f>::div(a, b).unwrap();
                        prop_assert_eq!(<$f>::mul(q, b), a);
                    }
                }

                #[test]
                fn log_exp_round_trip(a in elem()) {
                    match <$f>::log(a) {
                        None => prop_assert_eq!(a, <$f>::zero()),
                        Some(l) => prop_assert_eq!(<$f>::exp(l), a),
                    }
                }

                #[test]
                fn pow_is_repeated_mul(a in elem(), n in 0usize..12) {
                    let mut acc = <$f>::one();
                    for _ in 0..n {
                        acc = <$f>::mul(acc, a);
                    }
                    prop_assert_eq!(<$f>::pow(a, n), acc);
                }
            }
        }
    };
}

axioms!(gf4, Gf4, 15);
axioms!(gf8, Gf8, 255);
axioms!(gf16, Gf16, 65535);

mod regions {
    use super::*;

    proptest! {
        /// mult_xor twice with the same constant is a no-op (char-2 field).
        #[test]
        fn gf8_mult_xor_region_is_involutive(
            data in proptest::collection::vec(any::<u8>(), 1..200),
            c in 0usize..=255
        ) {
            let c = Gf8::elem(c);
            let src: Vec<u8> = data.iter().rev().cloned().collect();
            let mut dst = data.clone();
            Gf8::mult_xor_region(&mut dst, &src, c);
            Gf8::mult_xor_region(&mut dst, &src, c);
            prop_assert_eq!(dst, data);
        }

        /// Region multiplication is linear: c·(a⊕b) = c·a ⊕ c·b.
        #[test]
        fn gf8_region_linear(
            a in proptest::collection::vec(any::<u8>(), 64),
            b in proptest::collection::vec(any::<u8>(), 64),
            c in 0usize..=255
        ) {
            let c = Gf8::elem(c);
            let mut ab = vec![0u8; 64];
            for i in 0..64 { ab[i] = a[i] ^ b[i]; }
            let mut lhs = vec![0u8; 64];
            Gf8::mult_xor_region(&mut lhs, &ab, c);
            let mut rhs = vec![0u8; 64];
            Gf8::mult_xor_region(&mut rhs, &a, c);
            Gf8::mult_xor_region(&mut rhs, &b, c);
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn gf16_region_matches_scalar(
            words in proptest::collection::vec(any::<u16>(), 1..64),
            c in 0usize..=65535
        ) {
            let c = Gf16::elem(c);
            let src: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            let mut dst = vec![0u8; src.len()];
            Gf16::mult_region(&mut dst, &src, c);
            for (chunk, &w) in dst.chunks_exact(2).zip(&words) {
                let got = u16::from_le_bytes([chunk[0], chunk[1]]);
                prop_assert_eq!(got, Gf16::mul(c, w));
            }
        }
    }
}
