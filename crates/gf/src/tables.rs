//! Shared log/exp table construction for all GF(2^w) widths.

/// Discrete log / antilog tables for one field.
///
/// `exp` is doubled (length `2·(order−1)`) so that `exp[log a + log b]` never
/// needs an explicit modulo in the multiplication hot path.
pub(crate) struct Tables {
    /// `log[v]` = discrete log of the element with integer value `v`
    /// (`v ≥ 1`); entry 0 is a sentinel and must never be read.
    pub log: Box<[u32]>,
    /// `exp[i]` = integer value of `α^i`, for `i` in `0..2·(order−1)`.
    pub exp: Box<[u32]>,
}

/// Builds the tables for GF(2^w) with the given primitive polynomial, using
/// the standard LFSR walk `x ← x·α` with reduction by `poly`.
///
/// `poly` must be primitive so that `α = 2` generates the whole
/// multiplicative group; this is checked by a debug assertion (the walk must
/// visit every non-zero value exactly once).
pub(crate) fn build(w: u32, poly: usize) -> Tables {
    let order = 1usize << w;
    let group = order - 1;
    let mut log = vec![u32::MAX; order].into_boxed_slice();
    let mut exp = vec![0u32; 2 * group].into_boxed_slice();

    let mut x = 1usize;
    for i in 0..group {
        debug_assert_eq!(
            log[x],
            u32::MAX,
            "polynomial {poly:#x} is not primitive for w={w}"
        );
        exp[i] = x as u32;
        exp[i + group] = x as u32;
        log[x] = i as u32;
        x <<= 1;
        if x & order != 0 {
            x ^= poly;
        }
    }
    debug_assert_eq!(x, 1, "generator walk must return to 1 after {group} steps");
    Tables { log, exp }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf8_walk_covers_group_and_wraps() {
        let t = build(8, 0x11d);
        assert_eq!(t.exp[0], 1);
        assert_eq!(t.exp[1], 2);
        assert_eq!(t.exp[255], 1, "doubled table repeats from the group order");
        // Every non-zero value appears exactly once in the first period.
        let mut seen = [false; 256];
        for i in 0..255 {
            let v = t.exp[i] as usize;
            assert!(!seen[v]);
            seen[v] = true;
        }
        assert!(!seen[0]);
    }

    #[test]
    fn log_exp_are_inverse_permutations() {
        let t = build(4, 0x13);
        for v in 1..16usize {
            assert_eq!(t.exp[t.log[v] as usize] as usize, v);
        }
    }
}
