//! GF(2^8): the default field for STAIR coding (the paper uses w = 8 for all
//! STAIR experiments, valid while `n + m' ≤ 256` and `r + e_max ≤ 256`).

use std::sync::OnceLock;

use crate::counters;
use crate::field::{sealed::Sealed, Field};
use crate::tables::{build, Tables};

/// Tag type for GF(2^8) with the primitive polynomial `x^8+x^4+x^3+x^2+1`
/// (0x11d), the same default as GF-Complete and Jerasure.
///
/// # Example
///
/// ```
/// use stair_gf::{Field, Gf8};
///
/// let a = Gf8::elem(7);
/// assert_eq!(Gf8::mul(a, Gf8::inv(a).unwrap()), Gf8::one());
/// ```
#[derive(Clone, Copy, Debug, Default, Eq, Hash, PartialEq)]
pub struct Gf8;

impl Sealed for Gf8 {}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| build(8, Gf8::POLY))
}

impl Field for Gf8 {
    type Elem = u8;

    const W: u32 = 8;
    const ORDER: usize = 256;
    const POLY: usize = 0x11d;
    const ELEM_BYTES: usize = 1;

    #[inline]
    fn zero() -> u8 {
        0
    }

    #[inline]
    fn one() -> u8 {
        1
    }

    #[inline]
    fn elem(value: usize) -> u8 {
        assert!(
            value < Self::ORDER,
            "value {value} out of range for GF(2^8)"
        );
        value as u8
    }

    #[inline]
    fn value(e: u8) -> usize {
        e as usize
    }

    #[inline]
    fn add(a: u8, b: u8) -> u8 {
        a ^ b
    }

    #[inline]
    fn mul(a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            return 0;
        }
        let t = tables();
        t.exp[(t.log[a as usize] + t.log[b as usize]) as usize] as u8
    }

    #[inline]
    fn inv(a: u8) -> Option<u8> {
        if a == 0 {
            return None;
        }
        let t = tables();
        Some(t.exp[255 - t.log[a as usize] as usize] as u8)
    }

    #[inline]
    fn div(a: u8, b: u8) -> Option<u8> {
        let ib = Self::inv(b)?;
        Some(Self::mul(a, ib))
    }

    #[inline]
    fn exp(i: usize) -> u8 {
        tables().exp[i % 255] as u8
    }

    #[inline]
    fn log(a: u8) -> Option<usize> {
        if a == 0 {
            None
        } else {
            Some(tables().log[a as usize] as usize)
        }
    }

    fn mult_xor_region(dst: &mut [u8], src: &[u8], c: u8) {
        assert_eq!(dst.len(), src.len(), "region length mismatch");
        counters::record(src.len());
        match c {
            0 => {}
            1 => Self::xor_region(dst, src),
            _ => {
                let (lo, hi) = split_tables(c);
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d ^= lo[(s & 0x0f) as usize] ^ hi[(s >> 4) as usize];
                }
            }
        }
    }

    fn mult_region(dst: &mut [u8], src: &[u8], c: u8) {
        assert_eq!(dst.len(), src.len(), "region length mismatch");
        counters::record(src.len());
        match c {
            0 => dst.fill(0),
            1 => dst.copy_from_slice(src),
            _ => {
                let (lo, hi) = split_tables(c);
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = lo[(s & 0x0f) as usize] ^ hi[(s >> 4) as usize];
                }
            }
        }
    }
}

/// Builds the SPLIT(8,4) product tables for a constant `c`: `lo[x] = c·x` and
/// `hi[x] = c·(x << 4)`, so `c·b = lo[b & 15] ^ hi[b >> 4]` for any byte `b`
/// by the distributivity of field multiplication over XOR.
fn split_tables(c: u8) -> ([u8; 16], [u8; 16]) {
    let mut lo = [0u8; 16];
    let mut hi = [0u8; 16];
    for x in 0..16u8 {
        lo[x as usize] = Gf8::mul(c, x);
        hi[x as usize] = Gf8::mul(c, x << 4);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Schoolbook carry-less multiply with reduction, as an oracle.
    fn slow_mul(mut a: u16, mut b: u16) -> u8 {
        let mut p = 0u16;
        while b != 0 {
            if b & 1 != 0 {
                p ^= a;
            }
            a <<= 1;
            if a & 0x100 != 0 {
                a ^= 0x11d;
            }
            b >>= 1;
        }
        p as u8
    }

    #[test]
    fn mul_matches_slow_oracle_exhaustively() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(Gf8::mul(a, b), slow_mul(a as u16, b as u16), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            let inv = Gf8::inv(a).expect("nonzero element must be invertible");
            assert_eq!(Gf8::mul(a, inv), 1);
        }
        assert_eq!(Gf8::inv(0), None);
    }

    #[test]
    fn div_undoes_mul() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                assert_eq!(Gf8::div(Gf8::mul(a, b), b), Some(a));
            }
        }
        assert_eq!(Gf8::div(3, 0), None);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in [0u8, 1, 2, 3, 0x53, 0xff] {
            let mut acc = 1u8;
            for n in 0..20 {
                assert_eq!(Gf8::pow(a, n), if n == 0 { 1 } else { acc }, "a={a} n={n}");
                acc = Gf8::mul(acc, a);
            }
        }
        // Fermat: a^(2^8 - 1) = 1 for a != 0.
        for a in 1..=255u8 {
            assert_eq!(Gf8::pow(a, 255), 1);
        }
    }

    #[test]
    fn mult_xor_region_matches_scalar_loop() {
        let src: Vec<u8> = (0..=255u8).collect();
        for c in [0u8, 1, 2, 0x53, 0xe7] {
            let mut dst = vec![0xAA; 256];
            let mut expect = dst.clone();
            Gf8::mult_xor_region(&mut dst, &src, c);
            for (e, &s) in expect.iter_mut().zip(&src) {
                *e ^= Gf8::mul(c, s);
            }
            assert_eq!(dst, expect, "c={c}");
        }
    }

    #[test]
    fn mult_region_overwrites() {
        let src = [9u8; 32];
        let mut dst = [0xFF; 32];
        Gf8::mult_region(&mut dst, &src, 3);
        assert!(dst.iter().all(|&d| d == Gf8::mul(3, 9)));
        Gf8::mult_region(&mut dst, &src, 0);
        assert!(dst.iter().all(|&d| d == 0));
    }

    #[test]
    #[should_panic(expected = "region length mismatch")]
    fn region_length_mismatch_panics() {
        let mut dst = [0u8; 4];
        Gf8::mult_xor_region(&mut dst, &[0u8; 5], 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn elem_out_of_range_panics() {
        let _ = Gf8::elem(256);
    }
}
