//! GF(2^4): a tiny field used mainly by exhaustive tests, where the full
//! multiplication table (16×16) can be checked against an oracle instantly.

use std::sync::OnceLock;

use crate::counters;
use crate::field::{sealed::Sealed, Field};
use crate::tables::{build, Tables};

/// Tag type for GF(2^4) with the primitive polynomial `x^4+x+1` (0x13).
///
/// Elements occupy one byte each in region buffers, but region kernels treat
/// *both* nibbles of each byte as independent GF(2^4) elements (packed
/// layout), so arbitrary byte data round-trips through region arithmetic.
///
/// # Example
///
/// ```
/// use stair_gf::{Field, Gf4};
///
/// assert_eq!(Gf4::mul(Gf4::elem(9), Gf4::elem(13)), Gf4::elem(0xf));
/// ```
#[derive(Clone, Copy, Debug, Default, Eq, Hash, PartialEq)]
pub struct Gf4;

impl Sealed for Gf4 {}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| build(4, Gf4::POLY))
}

impl Field for Gf4 {
    type Elem = u8;

    const W: u32 = 4;
    const ORDER: usize = 16;
    const POLY: usize = 0x13;
    const ELEM_BYTES: usize = 1;

    #[inline]
    fn zero() -> u8 {
        0
    }

    #[inline]
    fn one() -> u8 {
        1
    }

    #[inline]
    fn elem(value: usize) -> u8 {
        assert!(
            value < Self::ORDER,
            "value {value} out of range for GF(2^4)"
        );
        value as u8
    }

    #[inline]
    fn value(e: u8) -> usize {
        e as usize
    }

    #[inline]
    fn add(a: u8, b: u8) -> u8 {
        a ^ b
    }

    #[inline]
    fn mul(a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            return 0;
        }
        let t = tables();
        t.exp[(t.log[a as usize] + t.log[b as usize]) as usize] as u8
    }

    #[inline]
    fn inv(a: u8) -> Option<u8> {
        if a == 0 {
            return None;
        }
        let t = tables();
        Some(t.exp[15 - t.log[a as usize] as usize] as u8)
    }

    #[inline]
    fn div(a: u8, b: u8) -> Option<u8> {
        let ib = Self::inv(b)?;
        Some(Self::mul(a, ib))
    }

    #[inline]
    fn exp(i: usize) -> u8 {
        tables().exp[i % 15] as u8
    }

    #[inline]
    fn log(a: u8) -> Option<usize> {
        if a == 0 {
            None
        } else {
            Some(tables().log[a as usize] as usize)
        }
    }

    fn mult_xor_region(dst: &mut [u8], src: &[u8], c: u8) {
        assert_eq!(dst.len(), src.len(), "region length mismatch");
        counters::record(src.len());
        if c == 0 {
            return;
        }
        let table = packed_table(c);
        for (d, &s) in dst.iter_mut().zip(src) {
            *d ^= table[s as usize];
        }
    }

    fn mult_region(dst: &mut [u8], src: &[u8], c: u8) {
        assert_eq!(dst.len(), src.len(), "region length mismatch");
        counters::record(src.len());
        if c == 0 {
            dst.fill(0);
            return;
        }
        let table = packed_table(c);
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = table[s as usize];
        }
    }
}

/// Builds the 256-entry table mapping a packed byte (two GF(2^4) nibbles) to
/// the packed product of both nibbles with the constant `c`.
fn packed_table(c: u8) -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut nib = [0u8; 16];
    for (x, n) in nib.iter_mut().enumerate() {
        *n = Gf4::mul(c, x as u8);
    }
    for (b, t) in table.iter_mut().enumerate() {
        *t = nib[b & 0x0f] | (nib[b >> 4] << 4);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slow_mul(mut a: u8, mut b: u8) -> u8 {
        let mut p = 0u8;
        while b != 0 {
            if b & 1 != 0 {
                p ^= a;
            }
            a <<= 1;
            if a & 0x10 != 0 {
                a ^= 0x13;
            }
            b >>= 1;
        }
        p
    }

    #[test]
    fn mul_matches_slow_oracle_exhaustively() {
        for a in 0..16u8 {
            for b in 0..16u8 {
                assert_eq!(Gf4::mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn inverses_exist_and_round_trip() {
        for a in 1..16u8 {
            assert_eq!(Gf4::mul(a, Gf4::inv(a).unwrap()), 1);
        }
    }

    #[test]
    fn packed_region_multiplies_both_nibbles() {
        let src = [0x5Au8, 0x0F, 0xF0, 0x33];
        let mut dst = [0u8; 4];
        Gf4::mult_xor_region(&mut dst, &src, 7);
        for (d, s) in dst.iter().zip(&src) {
            let want = Gf4::mul(7, s & 0x0f) | (Gf4::mul(7, s >> 4) << 4);
            assert_eq!(*d, want);
        }
    }
}
