//! Bit-matrix (XOR-only) region multiplication over GF(2^8).
//!
//! Cauchy Reed–Solomon codes can be executed with *pure XOR* arithmetic by
//! expanding each GF(2^w) coefficient into a `w × w` binary matrix
//! (Blömer et al. / Plank & Xu — references [8, 38] of the STAIR paper).
//! A region is split into `w` equal packets; output packet `i` is the XOR
//! of the input packets selected by row `i` of the matrix.
//!
//! This crate's default kernels use split product tables instead (closer to
//! GF-Complete); the bit-matrix path is provided as the classical
//! alternative and benchmarked against the table kernel in
//! `stair-bench/benches/gf_kernels.rs`.

use crate::field::Field;
use crate::Gf8;

/// The 8×8 binary matrix of multiplication by a GF(2^8) constant.
///
/// `rows[i]` is a bitmask over input bit positions: output bit `i` of the
/// product is the XOR (parity) of the input bits selected by `rows[i]`.
///
/// # Example
///
/// ```
/// use stair_gf::{BitMatrix8, Field, Gf8};
///
/// let m = BitMatrix8::for_constant(Gf8::elem(0x53));
/// for x in 0..=255u8 {
///     assert_eq!(m.apply(x), Gf8::mul(0x53, x));
/// }
/// ```
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct BitMatrix8 {
    rows: [u8; 8],
}

impl BitMatrix8 {
    /// Builds the matrix for multiplication by `c`.
    pub fn for_constant(c: u8) -> Self {
        // Column j of the matrix is the bit pattern of c·2^j; transpose
        // into row masks.
        let mut rows = [0u8; 8];
        for (j, col) in (0..8u32).map(|j| Gf8::mul(c, 1 << j)).enumerate() {
            for (i, row) in rows.iter_mut().enumerate() {
                if col & (1 << i) != 0 {
                    *row |= 1 << j;
                }
            }
        }
        BitMatrix8 { rows }
    }

    /// Multiplies a single element through the matrix (bit-serial; the
    /// region form below is the fast path).
    pub fn apply(&self, x: u8) -> u8 {
        let mut out = 0u8;
        for (i, &mask) in self.rows.iter().enumerate() {
            out |= (((x & mask).count_ones() & 1) as u8) << i;
        }
        out
    }

    /// XOR-only `Mult_XOR`: `dst ^= c · src`, where both regions are split
    /// into 8 packets of `len/8` bytes and each output packet accumulates
    /// whole input packets by XOR. Equivalent to
    /// [`Field::mult_xor_region`] for data laid out packet-wise.
    ///
    /// Note: the *element layout* differs from the byte-wise table kernel —
    /// here element `k` is formed by bit `k mod 8` of… each packet, i.e.
    /// the region holds `len/8` elements bit-sliced across packets. Both
    /// layouts give isomorphic codes; converters are unnecessary as long as
    /// encode and decode use the same kernel.
    ///
    /// # Panics
    ///
    /// Panics unless `dst.len() == src.len()` and the length is a multiple
    /// of 8.
    pub fn mult_xor_region_bitsliced(&self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "region length mismatch");
        assert_eq!(dst.len() % 8, 0, "bit-matrix regions need 8 packets");
        let packet = dst.len() / 8;
        for (out, &mask) in dst.chunks_exact_mut(packet).zip(&self.rows) {
            for j in 0..8 {
                if mask & (1 << j) != 0 {
                    let inp = &src[j * packet..(j + 1) * packet];
                    for (o, &s) in out.iter_mut().zip(inp) {
                        *o ^= s;
                    }
                }
            }
        }
    }

    /// Number of XOR packet operations this constant costs (the number of
    /// ones in the matrix) — the classical density metric for XOR codes.
    pub fn ones(&self) -> u32 {
        self.rows.iter().map(|r| r.count_ones()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_field_multiplication_exhaustively() {
        for c in 0..=255u8 {
            let m = BitMatrix8::for_constant(c);
            for x in [0u8, 1, 2, 0x35, 0x80, 0xFF] {
                assert_eq!(m.apply(x), Gf8::mul(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn identity_and_zero_matrices() {
        let one = BitMatrix8::for_constant(1);
        assert_eq!(one.ones(), 8);
        for x in 0..=255u8 {
            assert_eq!(one.apply(x), x);
        }
        let zero = BitMatrix8::for_constant(0);
        assert_eq!(zero.ones(), 0);
    }

    /// The bit-sliced region op implements the same linear map as the
    /// element op, element-by-element in the sliced layout.
    #[test]
    fn bitsliced_region_is_linear_and_correct() {
        let c = 0xA7u8;
        let m = BitMatrix8::for_constant(c);
        let packet = 16usize;
        // One logical element per bit column: build a region holding the
        // single element x broadcast through the slicing.
        for x in [0u8, 1, 0x53, 0xFE] {
            let mut src = vec![0u8; 8 * packet];
            for bit in 0..8 {
                if x & (1 << bit) != 0 {
                    src[bit * packet..(bit + 1) * packet].fill(0xFF);
                }
            }
            let mut dst = vec![0u8; 8 * packet];
            m.mult_xor_region_bitsliced(&mut dst, &src);
            let y = Gf8::mul(c, x);
            for bit in 0..8 {
                let want = if y & (1 << bit) != 0 { 0xFF } else { 0x00 };
                assert!(
                    dst[bit * packet..(bit + 1) * packet]
                        .iter()
                        .all(|&b| b == want),
                    "c={c} x={x} bit={bit}"
                );
            }
        }
    }

    /// Applying the same constant twice XORs to zero (involution in
    /// characteristic 2), independent of layout.
    #[test]
    fn bitsliced_involution() {
        let m = BitMatrix8::for_constant(0x1D);
        let src: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(37)).collect();
        let mut dst = vec![0u8; 64];
        m.mult_xor_region_bitsliced(&mut dst, &src);
        m.mult_xor_region_bitsliced(&mut dst, &src);
        assert!(dst.iter().all(|&b| b == 0));
    }

    #[test]
    fn density_statistics_are_sane() {
        // Average density of a random constant's matrix is ~32 ones
        // (half of 64); all non-zero constants are invertible maps.
        let total: u32 = (1..=255u8)
            .map(|c| BitMatrix8::for_constant(c).ones())
            .sum();
        let avg = total as f64 / 255.0;
        assert!((avg - 32.0).abs() < 4.0, "avg density {avg}");
    }

    #[test]
    #[should_panic(expected = "8 packets")]
    fn region_length_must_be_multiple_of_8() {
        let m = BitMatrix8::for_constant(3);
        let mut dst = [0u8; 12];
        m.mult_xor_region_bitsliced(&mut dst, &[0u8; 12]);
    }
}
