//! Global `Mult_XOR` operation counters.
//!
//! The paper evaluates encoding methods by their number of `Mult_XOR`
//! operations per stripe (§5.3, Fig. 9). Every region multiply issued through
//! [`crate::Field::mult_xor_region`] / [`crate::Field::mult_region`]
//! increments a process-wide counter, so a caller can verify the analytical
//! formulas (Eq. 5 / Eq. 6) against what the codec actually executed:
//!
//! ```
//! use stair_gf::{counters, Field, Gf8};
//!
//! let before = counters::mult_xors();
//! let src = [7u8; 64];
//! let mut dst = [0u8; 64];
//! Gf8::mult_xor_region(&mut dst, &src, Gf8::elem(3));
//! assert_eq!(counters::mult_xors() - before, 1);
//! ```
//!
//! The counter is cumulative and shared between threads (relaxed atomics);
//! for a precise per-operation count, measure deltas on a single thread as
//! the benchmark harnesses in `stair-bench` do.

use std::sync::atomic::{AtomicU64, Ordering};

static MULT_XORS: AtomicU64 = AtomicU64::new(0);
static REGION_BYTES: AtomicU64 = AtomicU64::new(0);

/// Records one `Mult_XOR` over `bytes` bytes. Called by the region kernels.
#[inline]
pub(crate) fn record(bytes: usize) {
    MULT_XORS.fetch_add(1, Ordering::Relaxed);
    REGION_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Total `Mult_XOR` region operations executed so far by this process.
pub fn mult_xors() -> u64 {
    MULT_XORS.load(Ordering::Relaxed)
}

/// Total bytes processed by `Mult_XOR` region operations so far.
pub fn region_bytes() -> u64 {
    REGION_BYTES.load(Ordering::Relaxed)
}

/// Resets both counters to zero. Intended for single-threaded measurement.
pub fn reset() {
    MULT_XORS.store(0, Ordering::Relaxed);
    REGION_BYTES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        // Other tests may run concurrently, so only check monotonicity.
        let m0 = mult_xors();
        let b0 = region_bytes();
        record(128);
        assert!(mult_xors() > m0);
        assert!(region_bytes() >= b0 + 128);
    }
}
