//! Galois Field arithmetic substrate for the STAIR codes reproduction.
//!
//! STAIR codes (Li & Lee, FAST '14) perform all coding arithmetic over a
//! binary extension field GF(2^w). The paper builds on the GF-Complete
//! library; this crate is a from-scratch portable replacement providing:
//!
//! * single-element arithmetic (add/mul/div/inv/pow) via log/exp tables for
//!   GF(2^4), GF(2^8), and GF(2^16) — see [`Gf4`], [`Gf8`], [`Gf16`];
//! * *region* kernels operating on whole sectors of bytes, most importantly
//!   [`Field::mult_xor_region`], the paper's `Mult_XOR(R1, R2, a)` primitive
//!   (§5.3): multiply region `R1` by constant `a` and XOR the product into
//!   `R2`. Region kernels use per-constant split nibble tables, the same
//!   algorithmic structure as GF-Complete's SPLIT tables;
//! * global [`counters`] tracking how many `Mult_XOR` operations were
//!   executed, so measured operation counts can be checked against the
//!   paper's analytical formulas (Eq. 5 and Eq. 6).
//!
//! # Example
//!
//! ```
//! use stair_gf::{Field, Gf8};
//!
//! let a = Gf8::elem(0x53);
//! let b = Gf8::elem(0xca);
//! let p = Gf8::mul(a, b);
//! // Multiplication forms a group on non-zero elements: division undoes it.
//! assert_eq!(Gf8::div(p, b), Some(a));
//!
//! // Region form: dst ^= 0x53 * src, one sector at a time.
//! let src = [0xca_u8; 512];
//! let mut dst = [0u8; 512];
//! Gf8::mult_xor_region(&mut dst, &src, a);
//! assert!(dst.iter().all(|&x| x == Gf8::value(p) as u8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmatrix;
pub mod counters;
mod field;
mod gf16;
mod gf4;
mod gf8;
mod tables;

pub use bitmatrix::BitMatrix8;
pub use field::Field;
pub use gf16::Gf16;
pub use gf4::Gf4;
pub use gf8::Gf8;
