//! GF(2^16): needed by the SD-code baseline whenever its global-parity
//! coefficients `α^(r·j + i)` must be distinct for `n·r > 2^8 − 1` symbols
//! per stripe (the paper notes SD codes "may choose among w = 8, 16, 32,
//! depending on configuration parameters", §6.2.1).

// Coordinate-indexed loops mirror the paper's (row, column) notation and
// stay symmetric with the write side; iterator adaptors would obscure that.
#![allow(clippy::needless_range_loop)]
use std::sync::OnceLock;

use crate::counters;
use crate::field::{sealed::Sealed, Field};
use crate::tables::{build, Tables};

/// Tag type for GF(2^16) with the primitive polynomial
/// `x^16+x^12+x^3+x+1` (0x1100b), the GF-Complete default.
///
/// Region buffers hold little-endian `u16` elements, so region lengths must
/// be even.
///
/// # Example
///
/// ```
/// use stair_gf::{Field, Gf16};
///
/// let a = Gf16::elem(0xbeef);
/// assert_eq!(Gf16::div(Gf16::mul(a, Gf16::elem(2)), Gf16::elem(2)), Some(a));
/// ```
#[derive(Clone, Copy, Debug, Default, Eq, Hash, PartialEq)]
pub struct Gf16;

impl Sealed for Gf16 {}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| build(16, Gf16::POLY))
}

impl Field for Gf16 {
    type Elem = u16;

    const W: u32 = 16;
    const ORDER: usize = 65536;
    const POLY: usize = 0x1100b;
    const ELEM_BYTES: usize = 2;

    #[inline]
    fn zero() -> u16 {
        0
    }

    #[inline]
    fn one() -> u16 {
        1
    }

    #[inline]
    fn elem(value: usize) -> u16 {
        assert!(
            value < Self::ORDER,
            "value {value} out of range for GF(2^16)"
        );
        value as u16
    }

    #[inline]
    fn value(e: u16) -> usize {
        e as usize
    }

    #[inline]
    fn add(a: u16, b: u16) -> u16 {
        a ^ b
    }

    #[inline]
    fn mul(a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            return 0;
        }
        let t = tables();
        t.exp[(t.log[a as usize] + t.log[b as usize]) as usize] as u16
    }

    #[inline]
    fn inv(a: u16) -> Option<u16> {
        if a == 0 {
            return None;
        }
        let t = tables();
        Some(t.exp[65535 - t.log[a as usize] as usize] as u16)
    }

    #[inline]
    fn div(a: u16, b: u16) -> Option<u16> {
        let ib = Self::inv(b)?;
        Some(Self::mul(a, ib))
    }

    #[inline]
    fn exp(i: usize) -> u16 {
        tables().exp[i % 65535] as u16
    }

    #[inline]
    fn log(a: u16) -> Option<usize> {
        if a == 0 {
            None
        } else {
            Some(tables().log[a as usize] as usize)
        }
    }

    fn mult_xor_region(dst: &mut [u8], src: &[u8], c: u16) {
        assert_eq!(dst.len(), src.len(), "region length mismatch");
        assert_eq!(
            dst.len() % 2,
            0,
            "GF(2^16) regions must hold whole u16 elements"
        );
        counters::record(src.len());
        match c {
            0 => {}
            1 => Self::xor_region(dst, src),
            _ => {
                let nib = nibble_tables(c);
                for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
                    let x = u16::from_le_bytes([s[0], s[1]]) as usize;
                    let p = nib[0][x & 0xf]
                        ^ nib[1][(x >> 4) & 0xf]
                        ^ nib[2][(x >> 8) & 0xf]
                        ^ nib[3][x >> 12];
                    let cur = u16::from_le_bytes([d[0], d[1]]);
                    d.copy_from_slice(&(cur ^ p).to_le_bytes());
                }
            }
        }
    }

    fn mult_region(dst: &mut [u8], src: &[u8], c: u16) {
        assert_eq!(dst.len(), src.len(), "region length mismatch");
        assert_eq!(
            dst.len() % 2,
            0,
            "GF(2^16) regions must hold whole u16 elements"
        );
        counters::record(src.len());
        match c {
            0 => dst.fill(0),
            1 => dst.copy_from_slice(src),
            _ => {
                let nib = nibble_tables(c);
                for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
                    let x = u16::from_le_bytes([s[0], s[1]]) as usize;
                    let p = nib[0][x & 0xf]
                        ^ nib[1][(x >> 4) & 0xf]
                        ^ nib[2][(x >> 8) & 0xf]
                        ^ nib[3][x >> 12];
                    d.copy_from_slice(&p.to_le_bytes());
                }
            }
        }
    }
}

/// SPLIT(16,4) product tables: `nib[k][x] = c · (x << 4k)`, so the product of
/// `c` with any u16 is the XOR of four table lookups.
fn nibble_tables(c: u16) -> [[u16; 16]; 4] {
    let mut nib = [[0u16; 16]; 4];
    for k in 0..4 {
        for x in 0..16u16 {
            nib[k][x as usize] = Gf16::mul(c, x << (4 * k));
        }
    }
    nib
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slow_mul(mut a: u32, mut b: u32) -> u16 {
        let mut p = 0u32;
        while b != 0 {
            if b & 1 != 0 {
                p ^= a;
            }
            a <<= 1;
            if a & 0x10000 != 0 {
                a ^= 0x1100b;
            }
            b >>= 1;
        }
        p as u16
    }

    #[test]
    fn mul_matches_slow_oracle_on_sampled_pairs() {
        // Exhaustive would be 2^32 pairs; sample a deterministic grid plus
        // boundary values instead.
        let samples: Vec<u16> = (0..64)
            .map(|i| (i * 1031) as u16)
            .chain([0, 1, 2, 0x8000, 0xffff])
            .collect();
        for &a in &samples {
            for &b in &samples {
                assert_eq!(Gf16::mul(a, b), slow_mul(a as u32, b as u32), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn exp_has_full_period() {
        assert_eq!(Gf16::exp(0), 1);
        assert_eq!(Gf16::exp(65535), 1);
        assert_ne!(
            Gf16::exp(21845),
            1,
            "α must not have order dividing 3·5·17·257/…"
        );
    }

    #[test]
    fn inverse_round_trip_sampled() {
        for a in (1..=65535u16).step_by(257) {
            assert_eq!(Gf16::mul(a, Gf16::inv(a).unwrap()), 1);
        }
    }

    #[test]
    fn region_ops_match_scalar() {
        let src: Vec<u8> = (0..128u8).collect();
        let mut dst = vec![0x55u8; 128];
        let mut expect = dst.clone();
        let c = 0x1234u16;
        Gf16::mult_xor_region(&mut dst, &src, c);
        for (d, s) in expect.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
            let x = u16::from_le_bytes([s[0], s[1]]);
            let cur = u16::from_le_bytes([d[0], d[1]]);
            d.copy_from_slice(&(cur ^ Gf16::mul(c, x)).to_le_bytes());
        }
        assert_eq!(dst, expect);
    }

    #[test]
    #[should_panic(expected = "whole u16")]
    fn odd_region_length_panics() {
        let mut dst = [0u8; 3];
        Gf16::mult_xor_region(&mut dst, &[0u8; 3], 5);
    }
}
