#!/usr/bin/env python3
"""Schema diff for bench JSON reports.

Usage: bench_schema_diff.py BASELINE.json FRESH.json

Compares the *shape* of a freshly produced bench report against the
committed baseline: the same nested key sets and the same scalar kinds
(all numbers are one kind — throughput obviously varies run to run).
List elements are folded into one merged element shape; `null` and
empty lists act as wildcards, since optional fields (per-op latency
percentiles) and sometimes-empty arrays (slow-op captures) depend on
the run. Exits non-zero when the schema drifted, so a field rename or
a dropped section fails CI instead of silently invalidating every
downstream consumer of the report.
"""

import json
import sys


def shape(v):
    """A report's shape: dicts keep keys, lists fold to one merged
    element, scalars become kind-sets (empty set = null wildcard)."""
    if isinstance(v, dict):
        return {k: shape(x) for k, x in v.items()}
    if isinstance(v, list):
        merged = None
        for x in v:
            merged = merge(merged, shape(x))
        return [merged]
    if v is None:
        return set()
    if isinstance(v, bool):
        return {"bool"}
    if isinstance(v, (int, float)):
        return {"number"}
    return {type(v).__name__}


def merge(a, b):
    if a is None:
        return b
    if b is None:
        return a
    if isinstance(a, dict) and isinstance(b, dict):
        return {k: merge(a.get(k), b.get(k)) for k in set(a) | set(b)}
    if isinstance(a, list) and isinstance(b, list):
        return [merge(a[0], b[0])]
    if isinstance(a, set) and isinstance(b, set):
        return a | b
    raise SystemExit(f"cannot merge shapes {render(a)} and {render(b)}")


def render(s):
    if isinstance(s, dict):
        return {k: render(v) for k, v in sorted(s.items())}
    if isinstance(s, list):
        return [render(s[0])] if s and s[0] is not None else []
    if isinstance(s, set):
        return "|".join(sorted(s)) or "null"
    return "empty-list"


def compare(a, b, path, drift):
    if isinstance(a, dict) and isinstance(b, dict):
        if set(a) != set(b):
            only_a = sorted(set(a) - set(b))
            only_b = sorted(set(b) - set(a))
            drift.append(f"{path}: keys differ (baseline-only {only_a}, fresh-only {only_b})")
            return
        for k in a:
            compare(a[k], b[k], f"{path}.{k}", drift)
    elif isinstance(a, list) and isinstance(b, list):
        if a[0] is not None and b[0] is not None:
            compare(a[0], b[0], f"{path}[]", drift)
    elif isinstance(a, set) and isinstance(b, set):
        if a and b and a != b:
            drift.append(f"{path}: kind {render(a)} vs {render(b)}")
    elif a is not None and b is not None:
        drift.append(f"{path}: {render(a)} vs {render(b)}")


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    baseline_path, fresh_path = sys.argv[1], sys.argv[2]
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)
    if baseline.get("harness") != fresh.get("harness"):
        raise SystemExit(
            f"harness mismatch: baseline {baseline.get('harness')!r} "
            f"vs fresh {fresh.get('harness')!r}"
        )
    drift = []
    compare(shape(baseline), shape(fresh), "$", drift)
    if drift:
        for d in drift:
            print(d)
        raise SystemExit(
            f"{fresh_path}: schema drifted from committed baseline {baseline_path}"
        )
    print(f"schema OK: {fresh_path} matches {baseline_path}")


if __name__ == "__main__":
    main()
